package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ptychopath/internal/grid"
)

func randArray(rng *rand.Rand, w, h int) *grid.Complex2D {
	a := grid.NewComplex2DSize(w, h)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

// naive2D computes the 2-D DFT directly.
func naive2D(a *grid.Complex2D, dir Direction) *grid.Complex2D {
	w, h := a.W(), a.H()
	out := grid.NewComplex2D(a.Bounds)
	sign := -1.0
	if dir == Inverse {
		sign = 1.0
	}
	for ky := 0; ky < h; ky++ {
		for kx := 0; kx < w; kx++ {
			var s complex128
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					ang := sign * 2 * math.Pi * (float64(kx*x)/float64(w) + float64(ky*y)/float64(h))
					s += a.Data[y*w+x] * cmplx.Exp(complex(0, ang))
				}
			}
			out.Data[ky*w+kx] = s
		}
	}
	if dir == Inverse {
		out.Scale(complex(1/float64(w*h), 0))
	}
	return out
}

func TestPlan2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {3, 5}, {6, 8}, {16, 16}} {
		w, h := dims[0], dims[1]
		a := randArray(rng, w, h)
		want := naive2D(a, Forward)
		got := a.Clone()
		NewPlan2D(w, h, false).Transform(got, Forward)
		if got.MaxDiff(want) > 1e-8 {
			t.Errorf("%dx%d: 2-D forward error %g", w, h, got.MaxDiff(want))
		}
	}
}

func TestPlan2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{8, 8}, {15, 9}, {32, 32}, {64, 64}} {
		w, h := dims[0], dims[1]
		a := randArray(rng, w, h)
		b := a.Clone()
		p := NewPlan2D(w, h, false)
		p.Transform(b, Forward)
		p.Transform(b, Inverse)
		if a.MaxDiff(b) > 1e-10 {
			t.Errorf("%dx%d: roundtrip error %g", w, h, a.MaxDiff(b))
		}
	}
}

func TestPlan2DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randArray(rng, 128, 128)
	serial := a.Clone()
	NewPlan2D(128, 128, false).Transform(serial, Forward)
	par := a.Clone()
	NewPlan2D(128, 128, true).Transform(par, Forward)
	if serial.MaxDiff(par) > 1e-10 {
		t.Fatalf("parallel/serial mismatch: %g", serial.MaxDiff(par))
	}
}

func TestPlan2DOffsetBoundsIgnored(t *testing.T) {
	// Tiles at arbitrary offsets transform identically to origin tiles.
	rng := rand.New(rand.NewSource(4))
	a := randArray(rng, 16, 16)
	b := grid.NewComplex2D(grid.NewRect(100, 200, 116, 216))
	copy(b.Data, a.Data)
	p := NewPlan2D(16, 16, false)
	p.Transform(a, Forward)
	p.Transform(b, Forward)
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatal("offset bounds must not affect transform")
		}
	}
}

func TestPlan2DShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	NewPlan2D(8, 8, false).Transform(grid.NewComplex2DSize(8, 9), Forward)
}

func TestShiftUnshiftInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{8, 8}, {7, 7}, {9, 6}, {5, 8}} {
		a := randArray(rng, dims[0], dims[1])
		b := a.Clone()
		Shift(b)
		Unshift(b)
		if a.MaxDiff(b) > 0 {
			t.Errorf("%v: Unshift(Shift(x)) != x", dims)
		}
	}
}

func TestShiftMovesDCToCenter(t *testing.T) {
	a := grid.NewComplex2DSize(8, 8)
	a.Set(0, 0, 1)
	Shift(a)
	if a.At(4, 4) != 1 {
		t.Fatal("Shift must move (0,0) to (w/2, h/2)")
	}
	var nonzero int
	for _, v := range a.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatal("Shift must be a permutation")
	}
}

func TestShiftOddDims(t *testing.T) {
	a := grid.NewComplex2DSize(5, 5)
	a.Set(0, 0, 1)
	Shift(a)
	if a.At(2, 2) != 1 {
		t.Fatalf("odd-dim Shift put DC at wrong place")
	}
}

func TestPlan2DSeparability(t *testing.T) {
	// FFT2(outer(u, v)) == outer(FFT(u), FFT(v)).
	rng := rand.New(rand.NewSource(6))
	n := 16
	u := randVec(rng, n)
	v := randVec(rng, n)
	a := grid.NewComplex2DSize(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			a.Data[y*n+x] = u[x] * v[y]
		}
	}
	NewPlan2D(n, n, false).Transform(a, Forward)
	fu := append([]complex128(nil), u...)
	fv := append([]complex128(nil), v...)
	p := NewPlan(n)
	p.Transform(fu, Forward)
	p.Transform(fv, Forward)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if cmplx.Abs(a.Data[y*n+x]-fu[x]*fv[y]) > 1e-8 {
				t.Fatal("separability violated")
			}
		}
	}
}

func BenchmarkFFT1D1024(b *testing.B) {
	p := NewPlan(1024)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%3))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Transform(x, Forward)
	}
}

func BenchmarkFFT2D128(b *testing.B) {
	p := NewPlan2D(128, 128, false)
	a := grid.NewComplex2DSize(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Transform(a, Forward)
	}
}

func BenchmarkFFT2D256Parallel(b *testing.B) {
	p := NewPlan2D(256, 256, true)
	a := grid.NewComplex2DSize(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Transform(a, Forward)
	}
}
