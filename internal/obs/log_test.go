package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormatsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("hello", "job_id", "job-0001")
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "hidden") {
		t.Fatal("debug line leaked at info level")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("json format produced non-JSON %q: %v", line, err)
	}
	if rec["job_id"] != "job-0001" {
		t.Fatalf("attr lost: %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("visible")
	if !strings.Contains(buf.String(), "visible") {
		t.Fatal("debug level did not enable debug lines")
	}

	// Defaults: empty strings select text/info.
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestDiscard(t *testing.T) {
	Discard().Info("dropped") // must not panic, writes nowhere
}
