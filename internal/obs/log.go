package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a *slog.Logger from the standard CLI flag values:
// format is "text" or "json", level is "debug", "info", "warn" or
// "error". Both ptychoserve and ptychoworker parse their -log-format
// and -log-level flags through this, so the two daemons cannot drift
// on accepted values.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

// Discard returns a logger that drops everything — the default for
// library code when no logger is injected, so call sites never
// nil-check.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
