package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket ladder, in seconds:
// 100µs to 10s, roughly 2.5x per step. It spans everything the server
// times — a WAL fsync on a fast disk sits in the first buckets, a
// multi-second grid iteration in the last.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram in the Prometheus
// exposition format. Observe is lock-free (one atomic add per bucket
// hit plus one for the sum) and allocation-free, so it can sit on the
// iteration hot path. A nil *Histogram is a valid no-op receiver.
//
// The sample count is derived from the bucket counts at write time
// rather than kept as a separate atomic, so the exposed +Inf bucket
// always equals _count even under concurrent observation.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // ascending upper bounds; implicit +Inf after
	counts []atomic.Int64
	sumNS  atomic.Int64
}

// NewHistogram returns a histogram named name (a full Prometheus
// metric name, e.g. "ptychoserve_wal_fsync_seconds") with the given
// ascending upper bounds in seconds. Panics on unsorted bounds — the
// bucket ladder is compile-time configuration, not runtime input.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{name: name, help: help}
	h.bounds = append([]float64(nil), bounds...)
	h.counts = make([]atomic.Int64, len(bounds)+1) // last = +Inf
	return h
}

// Observe records one latency sample. Safe for concurrent use;
// no-ops on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Write emits the histogram family — HELP, TYPE, cumulative
// _bucket{le=...} series, _sum and _count — in the Prometheus text
// exposition format.
func (h *Histogram) Write(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	h.writeSeries(w, "")
}

// writeSeries writes the bucket/sum/count samples with extraLabels
// (either "" or `name="value",...` without braces) spliced in front
// of le. Shared by Histogram.Write and HistogramVec.Write.
func (h *Histogram) writeSeries(w io.Writer, extraLabels string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.name, extraLabels, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, extraLabels, cum)
	sum := float64(h.sumNS.Load()) / 1e9
	if extraLabels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", h.name, strconv.FormatFloat(sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
	} else {
		braced := "{" + strings.TrimSuffix(extraLabels, ",") + "}"
		fmt.Fprintf(w, "%s_sum%s %s\n", h.name, braced, strconv.FormatFloat(sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, braced, cum)
	}
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// HistogramVec is a labeled family of Histograms — one child per
// distinct label-value combination, created on first observation.
// Observe takes a read lock on the fast path (child exists) and is
// allocation-free after warm-up for a bounded label set like
// route x status. A nil *HistogramVec is a valid no-op receiver.
type HistogramVec struct {
	name   string
	help   string
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram // key: joined escaped label values
	keys     []string              // insertion-ordered for deterministic Write
}

// NewHistogramVec returns a histogram family partitioned by the given
// label names.
func NewHistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	return &HistogramVec{
		name: name, help: help,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*Histogram{},
	}
}

// Observe records one sample against the child identified by values
// (which must match the label names positionally). No-ops on a nil
// receiver or a label-count mismatch.
func (v *HistogramVec) Observe(d time.Duration, values ...string) {
	if v == nil || len(values) != len(v.labels) {
		return
	}
	key := labelKey(v.labels, values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h == nil {
		v.mu.Lock()
		h = v.children[key]
		if h == nil {
			h = NewHistogram(v.name, v.help, v.bounds)
			v.children[key] = h
			v.keys = append(v.keys, key)
		}
		v.mu.Unlock()
	}
	h.Observe(d)
}

// labelKey renders the label pairs as `k1="v1",k2="v2",` — already in
// exposition form (trailing comma so "le" appends cleanly), reused
// verbatim at write time.
func labelKey(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		b.WriteString(l)
		b.WriteString("=\"")
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteString("\",")
	}
	return b.String()
}

func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// Write emits the whole family — one HELP/TYPE header, then every
// child's series in sorted label order (deterministic output for
// tests and diffing). Writes nothing when no child exists yet:
// Prometheus treats an absent family as "no data", which is truthful.
func (v *HistogramVec) Write(w io.Writer) {
	if v == nil {
		return
	}
	v.mu.RLock()
	keys := append([]string(nil), v.keys...)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	if len(keys) == 0 {
		return
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for _, i := range order {
		children[i].writeSeries(w, keys[i])
	}
}
