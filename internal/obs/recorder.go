package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates named phase durations — the flat, aggregate
// counterpart to Trace, used by the CLI tools to report where time
// went (compute, communication, assembly) without per-event spans.
// Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	phases map[string]time.Duration
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{phases: map[string]time.Duration{}}
}

// Add accumulates d into the named phase.
func (r *Recorder) Add(phase string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.phases[phase]; !ok {
		r.order = append(r.order, phase)
	}
	r.phases[phase] += d
}

// Time runs fn and accumulates its wall-clock duration into phase.
func (r *Recorder) Time(phase string, fn func()) {
	start := time.Now()
	fn()
	r.Add(phase, time.Since(start))
}

// Get returns the accumulated duration of a phase (0 when absent).
func (r *Recorder) Get(phase string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phases[phase]
}

// Total returns the sum over all phases.
func (r *Recorder) Total() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t time.Duration
	for _, d := range r.phases {
		t += d
	}
	return t
}

// Phases returns phase names in first-use order.
func (r *Recorder) Phases() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Report writes an aligned phase summary, longest first.
func (r *Recorder) Report(w io.Writer, title string) {
	r.mu.Lock()
	type kv struct {
		name string
		d    time.Duration
	}
	rows := make([]kv, 0, len(r.phases))
	for n, d := range r.phases {
		rows = append(rows, kv{n, d})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	fmt.Fprintf(w, "%s\n", title)
	total := r.Total()
	for _, row := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(row.d) / float64(total)
		}
		fmt.Fprintf(w, "  %-24s %12s  %5.1f%%\n", row.name, row.d.Round(time.Microsecond), pct)
	}
	fmt.Fprintf(w, "  %-24s %12s\n", "total", total.Round(time.Microsecond))
}
