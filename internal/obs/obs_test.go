package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("req-1")
	if got := tr.ID(); got != "req-1" {
		t.Fatalf("ID = %q", got)
	}
	root := tr.Begin("job", 0, RankCoordinator, IterNone)
	if root != 1 {
		t.Fatalf("first span ID = %d, want 1", root)
	}
	child := tr.Begin("iteration", root, RankCoordinator, 3)
	tr.End(child)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[1].Parent != root || spans[1].Iter != 3 {
		t.Fatalf("child span = %+v", spans[1])
	}
	for _, s := range spans {
		if s.End.IsZero() || s.End.Before(s.Start) {
			t.Fatalf("span %d not closed sanely: %+v", s.ID, s)
		}
	}
}

func TestTraceRecordAnchorsDuration(t *testing.T) {
	tr := NewTrace("")
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	id := tr.Record("compute", 0, 1, 7, start, 250*time.Millisecond)
	s := tr.Spans()[id-1]
	if s.Duration() != 250*time.Millisecond {
		t.Fatalf("duration = %v", s.Duration())
	}
	if !s.Start.Equal(start) || !s.End.Equal(start.Add(250*time.Millisecond)) {
		t.Fatalf("span not anchored: %+v", s)
	}
}

func TestTraceEndIdempotentAndBoundsChecked(t *testing.T) {
	tr := NewTrace("")
	id := tr.Begin("x", 0, RankCoordinator, IterNone)
	tr.End(id)
	end := tr.Spans()[0].End
	time.Sleep(time.Millisecond)
	tr.End(id) // second End must not move the close time
	if !tr.Spans()[0].End.Equal(end) {
		t.Fatal("End moved an already-closed span")
	}
	tr.End(0)   // nil-trace sentinel
	tr.End(999) // unknown ID
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if id := tr.Begin("x", 0, 0, 0); id != 0 {
		t.Fatalf("nil Begin = %d", id)
	}
	tr.End(1)
	if tr.Record("x", 0, 0, 0, time.Now(), time.Second) != 0 {
		t.Fatal("nil Record")
	}
	if tr.Spans() != nil || tr.Len() != 0 || tr.ID() != "" {
		t.Fatal("nil accessors")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.Begin("compute", 0, rank, i)
				tr.End(id)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTrace("req")
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.Record("queue-wait", 0, RankCoordinator, IterNone, base, 10*time.Millisecond)
	tr.Record("compute", 0, 1, 2, base.Add(10*time.Millisecond), 5*time.Millisecond)
	tr.Begin("open", 0, RankCoordinator, IterNone) // open spans are skipped

	var buf bytes.Buffer
	if err := WriteChrome(&buf, "job-0001", tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (open span must be skipped)", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["ts"].(float64) != 0 {
		t.Fatalf("first event: %+v", events[0])
	}
	if events[1]["ts"].(float64) != 10000 || events[1]["dur"].(float64) != 5000 {
		t.Fatalf("second event not in relative microseconds: %+v", events[1])
	}
	if events[1]["tid"].(float64) != 2 { // rank 1 -> tid 2, coordinator 0
		t.Fatalf("tid = %v", events[1]["tid"])
	}
}

func TestHistogramObserveAndWrite(t *testing.T) {
	h := NewHistogram("test_seconds", "a test histogram", []float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)   // bucket 0.01
	h.Observe(50 * time.Millisecond)  // bucket 0.1
	h.Observe(500 * time.Millisecond) // bucket 1
	h.Observe(5 * time.Second)        // +Inf
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	var buf bytes.Buffer
	h.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		"test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if err := LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("own exposition fails lint: %v", err)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Count() != 0 {
		t.Fatal("nil Count")
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	// le is an inclusive upper bound: a sample exactly on a bound
	// lands in that bucket.
	h := NewHistogram("b_seconds", "bounds", []float64{0.5})
	h.Observe(500 * time.Millisecond)
	var buf bytes.Buffer
	h.Write(&buf)
	if !strings.Contains(buf.String(), `b_seconds_bucket{le="0.5"} 1`) {
		t.Fatalf("boundary sample fell through:\n%s", buf.String())
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec("http_seconds", "request latency", []string{"route", "status"}, []float64{0.1, 1})
	v.Observe(50*time.Millisecond, "/v1/jobs", "200")
	v.Observe(2*time.Second, "/v1/jobs", "200")
	v.Observe(10*time.Millisecond, "/v1/jobs/{id}", "404")
	v.Observe(time.Second, "bad") // label-count mismatch: dropped

	var buf bytes.Buffer
	v.Write(&buf)
	out := buf.String()
	if strings.Count(out, "# TYPE http_seconds histogram") != 1 {
		t.Fatalf("want exactly one TYPE line:\n%s", out)
	}
	for _, want := range []string{
		`http_seconds_bucket{route="/v1/jobs",status="200",le="+Inf"} 2`,
		`http_seconds_count{route="/v1/jobs",status="200"} 2`,
		`http_seconds_bucket{route="/v1/jobs/{id}",status="404",le="0.1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if err := LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("vec exposition fails lint: %v", err)
	}

	var empty bytes.Buffer
	NewHistogramVec("e", "empty", []string{"l"}, DefBuckets).Write(&empty)
	if empty.Len() != 0 {
		t.Fatalf("empty vec wrote %q", empty.String())
	}
}

func TestHistogramVecEscaping(t *testing.T) {
	v := NewHistogramVec("esc_seconds", "escapes", []string{"p"}, []float64{1})
	v.Observe(time.Millisecond, `a"b\c`+"\n")
	var buf bytes.Buffer
	v.Write(&buf)
	if !strings.Contains(buf.String(), `p="a\"b\\c\n"`) {
		t.Fatalf("label value not escaped:\n%s", buf.String())
	}
	if err := LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("escaped exposition fails lint: %v", err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c_seconds", "concurrent", DefBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewHistogram("a_seconds", "allocs", DefBuckets)
	allocs := testing.AllocsPerRun(100, func() { h.Observe(3 * time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f objects per call, want 0", allocs)
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram("x", "x", []float64{1, 0.5})
}
