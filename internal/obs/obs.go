// Package obs is the dependency-free observability kit for the
// ptychopath serving stack: span traces that follow a job from HTTP
// accept through the grid workers' compute/comm phases, fixed-bucket
// lock-free latency histograms in the Prometheus exposition format,
// structured-logging helpers, and a strict exposition-format linter.
//
// The design constraints, in order:
//
//  1. Zero dependencies — like the rest of the repo, obs is standard
//     library only.
//  2. Zero allocations on the hot path — Histogram.Observe is a pair
//     of atomic adds; Trace appends into preallocated span storage
//     under a mutex that is touched once per iteration, never per
//     scan location.
//  3. Nil-safety — a nil *Trace or *Histogram is a valid no-op
//     receiver, so call sites never need "if tracing enabled" guards.
//
// The span model is deliberately small: a Span has an ID, a parent
// link, a name, and two typed phase attributes (Rank, Iter) instead
// of a generic attribute bag. That covers everything the paper's
// timing methodology needs — per-rank, per-iteration compute and
// communication phases around a coordinator timeline — without
// interface{} boxing or map allocation per span.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// RankCoordinator marks a span recorded by the job coordinator rather
// than a worker rank.
const RankCoordinator = -1

// IterNone marks a span not tied to a specific iteration.
const IterNone = -1

// Span is one timed phase in a trace. Spans form a tree through
// Parent (0 = root span, i.e. no parent — IDs start at 1).
type Span struct {
	ID     int       `json:"id"`
	Parent int       `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Rank   int       `json:"rank"` // RankCoordinator for coordinator spans
	Iter   int       `json:"iter"` // IterNone when not iteration-scoped
	Start  time.Time `json:"start"`
	// End is zero while the span is open.
	End time.Time `json:"end,omitzero"`
}

// Duration returns End-Start, or 0 for a span still open.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is an append-only collection of spans belonging to one
// request/job, identified by a request ID that travels with it (HTTP
// X-Request-ID, PTGW SETUP trace field). Safe for concurrent use; a
// nil *Trace is a valid no-op.
type Trace struct {
	mu    sync.Mutex
	id    string
	spans []Span
}

// NewTrace returns an empty trace carrying the given request ID.
func NewTrace(requestID string) *Trace {
	// Typical job: a handful of coordinator spans plus compute+comm
	// per rank per iteration. Preallocate a page's worth so early
	// iterations never grow the slice.
	return &Trace{id: requestID, spans: make([]Span, 0, 64)}
}

// ID returns the trace's request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Begin opens a span starting now and returns its ID (0 on a nil
// trace). parent is the enclosing span's ID, or 0 for a root span.
func (t *Trace) Begin(name string, parent, rank, iter int) int {
	if t == nil {
		return 0
	}
	return t.begin(name, parent, rank, iter, time.Now())
}

// BeginAt is Begin with an explicit start time, for spans whose start
// predates the call (a queue wait measured when dequeued, say).
func (t *Trace) BeginAt(name string, parent, rank, iter int, start time.Time) int {
	if t == nil {
		return 0
	}
	return t.begin(name, parent, rank, iter, start)
}

func (t *Trace) begin(name string, parent, rank, iter int, start time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{
		ID: len(t.spans) + 1, Parent: parent, Name: name,
		Rank: rank, Iter: iter, Start: start,
	})
	return len(t.spans)
}

// End closes the span now. Unknown or already-closed IDs (and id 0,
// the nil-trace sentinel) are ignored.
func (t *Trace) End(id int) {
	t.EndAt(id, time.Now())
}

// EndAt closes the span at an explicit time.
func (t *Trace) EndAt(id int, at time.Time) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id > len(t.spans) || !t.spans[id-1].End.IsZero() {
		return
	}
	t.spans[id-1].End = at
}

// Record appends an already-measured span: it started at start and
// lasted d. This is how externally-timed phases land in the trace —
// a worker rank's compute time arrives as a duration over the wire,
// and the coordinator anchors it against its own clock (worker clocks
// are never compared). Returns the span ID (0 on a nil trace).
func (t *Trace) Record(name string, parent, rank, iter int, start time.Time, d time.Duration) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{
		ID: len(t.spans) + 1, Parent: parent, Name: name,
		Rank: rank, Iter: iter, Start: start, End: start.Add(d),
	})
	return len(t.spans)
}

// Spans returns a copy of the spans recorded so far, in creation
// order (nil on a nil trace).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// chromeEvent is one Chrome trace-event ("X" complete events), the
// JSON schema chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes spans as a Chrome trace-event JSON array
// (load in chrome://tracing or https://ui.perfetto.dev). Timestamps
// are microseconds relative to the earliest span; each rank renders
// as its own thread row (tid = rank+1, coordinator = 0). Open spans
// are skipped — the export is a snapshot of completed phases.
func WriteChrome(w io.Writer, process string, spans []Span) error {
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		if s.End.IsZero() {
			continue
		}
		ev := chromeEvent{
			Name: s.Name, Cat: process, Ph: "X",
			TS:  s.Start.Sub(epoch).Microseconds(),
			Dur: s.Duration().Microseconds(),
			PID: 1, TID: s.Rank + 1,
			Args: map[string]any{"id": s.ID},
		}
		if s.Iter != IterNone {
			ev.Args["iter"] = s.Iter
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}
