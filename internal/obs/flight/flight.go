// Package flight is the failure flight recorder: a bounded ring of
// recent structured events kept per job, cheap enough to run for every
// job all the time, so that when a job fails the last N things that
// happened to it — state changes, iterations, folds, checkpoint
// writes, rank-stats anomalies — are available in one debug bundle
// without having had logging verbosity turned up in advance.
//
// Like the rest of internal/obs it is dependency-free and nil-safe: a
// nil *Recorder is a valid no-op receiver, so call sites never guard.
package flight

import (
	"sync"
	"time"
)

// Event is one recorded moment. Kind names what happened ("state",
// "iteration", "snapshot", "fold", "checkpoint", "prediction",
// "straggler", "error", ...); the remaining fields carry whatever
// subset applies.
type Event struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	State  string    `json:"state,omitempty"`
	Iter   int       `json:"iter,omitempty"`
	Cost   float64   `json:"cost,omitempty"`
	Frames int       `json:"frames,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// DefaultDepth is the ring capacity used when NewRecorder is given a
// non-positive one: enough to hold the tail of a failing run without
// ever mattering for memory.
const DefaultDepth = 128

// Recorder is a fixed-capacity ring of Events. Safe for concurrent
// use; a nil *Recorder no-ops.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next int  // index of the next write
	full bool // the ring has wrapped at least once
}

// NewRecorder returns a recorder keeping the last depth events
// (DefaultDepth when depth <= 0).
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Recorder{buf: make([]Event, depth)}
}

// Record appends one event, evicting the oldest when full. A zero
// Time is stamped with the current time.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events, oldest first (nil on
// a nil recorder).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len returns how many events are currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
