package flight

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: "state"})
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder Events() = %v, want nil", got)
	}
	if r.Len() != 0 {
		t.Fatalf("nil recorder Len() = %d, want 0", r.Len())
	}
}

func TestRingKeepsLastNOldestFirst(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: "iteration", Iter: i})
	}
	got := r.Events()
	if len(got) != 4 || r.Len() != 4 {
		t.Fatalf("ring holds %d events (Len %d), want 4", len(got), r.Len())
	}
	for i, e := range got {
		if want := 6 + i; e.Iter != want {
			t.Fatalf("event %d is iter %d, want %d (not oldest-first last-N)", i, e.Iter, want)
		}
	}
}

func TestPartialFillAndTimestamp(t *testing.T) {
	r := NewRecorder(0) // DefaultDepth
	before := time.Now()
	r.Record(Event{Kind: "state", State: "queued"})
	r.Record(Event{Kind: "state", State: "running"})
	got := r.Events()
	if len(got) != 2 {
		t.Fatalf("%d events, want 2", len(got))
	}
	if got[0].State != "queued" || got[1].State != "running" {
		t.Fatalf("order broken: %+v", got)
	}
	if got[0].Time.Before(before.Add(-time.Second)) || got[0].Time.IsZero() {
		t.Fatalf("zero Time not stamped: %v", got[0].Time)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: "iteration", Detail: fmt.Sprintf("g%d", g), Iter: i})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len %d after 800 concurrent records into a 64-ring", r.Len())
	}
	for _, e := range r.Events() {
		if e.Kind != "iteration" || e.Time.IsZero() {
			t.Fatalf("torn event survived: %+v", e)
		}
	}
}
