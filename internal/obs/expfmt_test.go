package obs

import (
	"strings"
	"testing"
)

func TestLintExpositionAcceptsWellFormed(t *testing.T) {
	good := `# HELP ptychoserve_jobs_submitted_total Jobs accepted.
# TYPE ptychoserve_jobs_submitted_total counter
ptychoserve_jobs_submitted_total 42

# HELP ptychoserve_queue_depth Queued jobs.
# TYPE ptychoserve_queue_depth gauge
ptychoserve_queue_depth 3
# TYPE hist_seconds histogram
hist_seconds_bucket{le="0.1"} 1
hist_seconds_bucket{le="1"} 2
hist_seconds_bucket{le="+Inf"} 2
hist_seconds_sum 0.35
hist_seconds_count 2
# TYPE labeled_seconds histogram
labeled_seconds_bucket{route="/v1/jobs",le="0.1"} 5
labeled_seconds_bucket{route="/v1/jobs",le="+Inf"} 5
labeled_seconds_sum{route="/v1/jobs"} 0.2
labeled_seconds_count{route="/v1/jobs"} 5
`
	if err := LintExposition([]byte(good)); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestLintExpositionRejections(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"no TYPE", "orphan_metric 1\n", "no preceding TYPE"},
		{"bad name", "# TYPE 9bad counter\n", "invalid metric name"},
		{"bad type", "# TYPE m flavor\n", "unknown TYPE"},
		{"double TYPE", "# TYPE m gauge\n# TYPE m gauge\nm 1\n", "second TYPE"},
		{"double HELP", "# HELP m a\n# HELP m b\n# TYPE m gauge\nm 1\n", "second HELP"},
		{"counter suffix", "# TYPE m counter\nm 1\n", "does not end in _total"},
		{"negative counter", "# TYPE m_total counter\nm_total -1\n", "negative"},
		{"bad value", "# TYPE m gauge\nm abc\n", "unparseable value"},
		{"duplicate series", "# TYPE m gauge\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n", "duplicate series"},
		{"bad label name", "# TYPE m gauge\nm{9x=\"1\"} 1\n", "invalid label name"},
		{"unquoted label", "# TYPE m gauge\nm{a=1} 1\n", "unquoted value"},
		{"bad escape", "# TYPE m gauge\nm{a=\"\\t\"} 1\n", "invalid escape"},
		{"unterminated label", "# TYPE m gauge\nm{a=\"x\n", "unterminated"},
		{
			"bucket order",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"not ascending",
		},
		{
			"bucket monotonicity",
			"# TYPE h histogram\nh_bucket{le=\"0.5\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative count decreases",
		},
		{
			"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"missing +Inf",
		},
		{
			"+Inf vs count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"!= _count",
		},
		{
			"stray histogram sample",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\nh 1\n",
			"stray sample",
		},
		{
			"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintExposition([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted malformed exposition:\n%s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLintExpositionHistogramPerLabelSet(t *testing.T) {
	// Monotonicity is tracked per label set: two routes interleaved
	// must not be compared against each other.
	body := `# TYPE h histogram
h_bucket{route="a",le="0.1"} 10
h_bucket{route="b",le="0.1"} 1
h_bucket{route="a",le="+Inf"} 10
h_bucket{route="b",le="+Inf"} 1
h_sum{route="a"} 1
h_count{route="a"} 10
h_sum{route="b"} 0.1
h_count{route="b"} 1
`
	if err := LintExposition([]byte(body)); err != nil {
		t.Fatalf("per-labelset tracking broken: %v", err)
	}
}
