package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintExposition strictly validates a Prometheus text-exposition scrape
// body (the full output of /metrics). It is deliberately pickier than
// a scraper: a Prometheus server tolerates quite a lot of sloppiness
// by treating odd input as untyped samples, which means a malformed
// metric ships silently and only fails when someone tries to query
// it. This linter fails CI instead. It enforces:
//
//   - every line is empty, a HELP/TYPE comment, or a sample
//   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
//     match [a-zA-Z_][a-zA-Z0-9_]*; label values use valid escapes
//   - at most one HELP and one TYPE per family; TYPE precedes the
//     family's first sample; every sample belongs to a declared family
//   - counter samples end in _total
//   - histogram families expose only _bucket/_sum/_count series; per
//     label set, le bounds strictly ascend, cumulative bucket counts
//     never decrease, the +Inf bucket exists and equals _count
//   - sample values parse as floats; no duplicate series
func LintExposition(data []byte) error {
	type histSeries struct {
		buckets []struct {
			le  float64
			cum float64
		}
		sawInf   bool
		infCount float64
		count    float64
		sawCount bool
		sawSum   bool
	}
	type family struct {
		typ     string
		help    bool
		typLine int
	}
	families := map[string]*family{}
	hists := map[string]map[string]*histSeries{} // family -> labelset key
	seen := map[string]bool{}                    // duplicate-series detection

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" { // plain comment, legal, ignored
				continue
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			switch kind {
			case "HELP":
				if f.help {
					return fmt.Errorf("line %d: second HELP for %s", lineNo, name)
				}
				f.help = true
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("line %d: second TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				f.typ = rest
				f.typLine = lineNo
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		serKey := name + "{" + canonicalLabels(labels) + "}"
		if seen[serKey] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, serKey)
		}
		seen[serKey] = true

		// Resolve the family: the sample name itself, or for histogram
		// series the name with the _bucket/_sum/_count suffix stripped.
		famName, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name {
				if f := families[base]; f != nil && f.typ == "histogram" {
					famName, suffix = base, sfx
				}
				break
			}
		}
		f := families[famName]
		if f == nil || f.typ == "" {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE declaration", lineNo, name)
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter sample %s does not end in _total", lineNo, name)
			}
			if value < 0 {
				return fmt.Errorf("line %d: counter %s is negative (%g)", lineNo, name, value)
			}
		case "histogram":
			if suffix == "" {
				return fmt.Errorf("line %d: histogram family %s has stray sample %s (want _bucket/_sum/_count)", lineNo, famName, name)
			}
			key := canonicalLabelsExcept(labels, "le")
			byKey := hists[famName]
			if byKey == nil {
				byKey = map[string]*histSeries{}
				hists[famName] = byKey
			}
			hs := byKey[key]
			if hs == nil {
				hs = &histSeries{}
				byKey[key] = hs
			}
			switch suffix {
			case "_bucket":
				leRaw, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: %s without le label", lineNo, name)
				}
				if leRaw == "+Inf" {
					hs.sawInf = true
					hs.infCount = value
					break
				}
				le, err := strconv.ParseFloat(leRaw, 64)
				if err != nil {
					return fmt.Errorf("line %d: unparseable le=%q: %v", lineNo, leRaw, err)
				}
				if hs.sawInf {
					return fmt.Errorf("line %d: %s bucket le=%q after +Inf", lineNo, name, leRaw)
				}
				if n := len(hs.buckets); n > 0 {
					if le <= hs.buckets[n-1].le {
						return fmt.Errorf("line %d: %s le bounds not ascending (%g after %g)", lineNo, name, le, hs.buckets[n-1].le)
					}
					if value < hs.buckets[n-1].cum {
						return fmt.Errorf("line %d: %s{%s} cumulative count decreases (%g after %g)", lineNo, name, key, value, hs.buckets[n-1].cum)
					}
				}
				hs.buckets = append(hs.buckets, struct{ le, cum float64 }{le, value})
			case "_sum":
				hs.sawSum = true
			case "_count":
				hs.sawCount = true
				hs.count = value
			}
		}
	}

	for fam, byKey := range hists {
		for key, hs := range byKey {
			where := fam
			if key != "" {
				where = fam + "{" + key + "}"
			}
			if !hs.sawInf {
				return fmt.Errorf("histogram %s: missing +Inf bucket", where)
			}
			if !hs.sawSum || !hs.sawCount {
				return fmt.Errorf("histogram %s: missing _sum or _count", where)
			}
			if n := len(hs.buckets); n > 0 && hs.infCount < hs.buckets[n-1].cum {
				return fmt.Errorf("histogram %s: +Inf bucket (%g) below last finite bucket (%g)", where, hs.infCount, hs.buckets[n-1].cum)
			}
			if hs.infCount != hs.count {
				return fmt.Errorf("histogram %s: +Inf bucket (%g) != _count (%g)", where, hs.infCount, hs.count)
			}
		}
	}
	return nil
}

// parseComment splits a # line into ("HELP"|"TYPE", name, rest) or
// ("", "", "") for a plain comment.
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimPrefix(body, " ")
	var tag string
	switch {
	case strings.HasPrefix(body, "HELP "):
		tag = "HELP"
	case strings.HasPrefix(body, "TYPE "):
		tag = "TYPE"
	default:
		return "", "", "", nil
	}
	body = strings.TrimPrefix(body, tag+" ")
	sp := strings.IndexByte(body, ' ')
	if sp < 0 {
		if tag == "HELP" {
			// HELP with empty text is legal.
			name, body = body, ""
		} else {
			return "", "", "", fmt.Errorf("malformed %s comment", tag)
		}
	} else {
		name, body = body[:sp], body[sp+1:]
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("%s for invalid metric name %q", tag, name)
	}
	return tag, name, body, nil
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (name string, labels [][2]string, value float64, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name at %q", line)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var consumed int
		labels, consumed, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %s: %w", name, err)
		}
		rest = rest[consumed:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %s: want `value [timestamp]`, got %q", name, rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s: unparseable value %q", name, fields[0])
	}
	if math.IsNaN(value) {
		// NaN is format-legal; keep it flowing (comparisons above
		// use < which is false for NaN, so it cannot fail bucket
		// monotonicity spuriously).
		_ = value
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %s: unparseable timestamp %q", name, fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses a `{k="v",...}` block, returning the pairs and
// the number of bytes consumed including both braces.
func parseLabels(s string) ([][2]string, int, error) {
	var labels [][2]string
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(s) && isLabelNameChar(s[i], i == start) {
			i++
		}
		lname := s[start:i]
		if lname == "" || !validLabelName(lname) {
			return nil, 0, fmt.Errorf("invalid label name at %q", s[start:])
		}
		if i >= len(s) || s[i] != '=' {
			return nil, 0, fmt.Errorf("label %s: missing =", lname)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return nil, 0, fmt.Errorf("label %s: unquoted value", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, 0, fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, 0, fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, 0, fmt.Errorf("label %s: invalid escape \\%c", lname, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, [2]string{lname, val.String()})
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isLabelNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isLabelNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func labelValue(labels [][2]string, name string) (string, bool) {
	for _, kv := range labels {
		if kv[0] == name {
			return kv[1], true
		}
	}
	return "", false
}

func canonicalLabels(labels [][2]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels [][2]string, drop string) string {
	parts := make([]string, 0, len(labels))
	for _, kv := range labels {
		if kv[0] == drop {
			continue
		}
		parts = append(parts, kv[0]+"="+strconv.Quote(kv[1]))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
