package metrics

import (
	"math"
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/tiling"
)

func borderMesh(t *testing.T, w, h, rows, cols int) *tiling.Mesh {
	t.Helper()
	m, err := tiling.NewMesh(grid.RectWH(0, 0, w, h), rows, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBorderErrorRatioUniformErrorIsOne(t *testing.T) {
	err := grid.NewComplex2DSize(32, 32)
	err.Fill(0.5 + 0.2i)
	m := borderMesh(t, 32, 32, 2, 2)
	if got := BorderErrorRatio(err, m, 4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform error ratio %g, want 1", got)
	}
}

func TestBorderErrorRatioDetectsBorderConcentration(t *testing.T) {
	// Error only inside the boundary band: ratio must blow up.
	errMap := grid.NewComplex2DSize(32, 32)
	m := borderMesh(t, 32, 32, 2, 2)
	bx := m.Tile(0, 0).X1 // 16
	for y := 0; y < 32; y++ {
		for x := bx - 2; x < bx+2; x++ {
			errMap.Set(x, y, 1)
		}
	}
	// A touch of error elsewhere to keep the denominator finite.
	errMap.Set(2, 2, complex(0.01, 0))
	got := BorderErrorRatio(errMap, m, 2)
	if got < 20 {
		t.Fatalf("border-concentrated error ratio %g, want >> 1", got)
	}
}

func TestBorderErrorRatioAntiConcentration(t *testing.T) {
	// Error only AWAY from borders: ratio < 1.
	errMap := grid.NewComplex2DSize(32, 32)
	errMap.Set(2, 2, 1)
	errMap.Set(29, 29, 1)
	m := borderMesh(t, 32, 32, 2, 2)
	if got := BorderErrorRatio(errMap, m, 3); got != 0 {
		t.Fatalf("interior-only error ratio %g, want 0", got)
	}
}

func TestBorderErrorRatioHandlesVerticalAndHorizontal(t *testing.T) {
	// Error along the horizontal boundary only; 2x1 mesh has no
	// vertical boundary.
	errMap := grid.NewComplex2DSize(16, 16)
	m := borderMesh(t, 16, 16, 2, 1)
	by := m.Tile(0, 0).Y1
	for x := 0; x < 16; x++ {
		errMap.Set(x, by, 1)
	}
	errMap.Set(0, 0, complex(0.001, 0))
	if got := BorderErrorRatio(errMap, m, 1); got < 10 {
		t.Fatalf("horizontal boundary not detected: %g", got)
	}
}

func TestBorderErrorRatioSingleTile(t *testing.T) {
	// 1x1 mesh has no interior boundaries: ratio defined as 1.
	errMap := grid.NewComplex2DSize(8, 8)
	errMap.Fill(1)
	m := borderMesh(t, 8, 8, 1, 1)
	if got := BorderErrorRatio(errMap, m, 2); got != 1 {
		t.Fatalf("1x1 mesh ratio %g, want 1", got)
	}
}

func TestBorderErrorRatioZeroOutside(t *testing.T) {
	// All error on the border band, exactly zero outside -> +Inf.
	errMap := grid.NewComplex2DSize(16, 16)
	m := borderMesh(t, 16, 16, 1, 2)
	bx := m.Tile(0, 0).X1
	for y := 0; y < 16; y++ {
		errMap.Set(bx, y, 1)
	}
	if got := BorderErrorRatio(errMap, m, 1); !math.IsInf(got, 1) {
		t.Fatalf("ratio %g, want +Inf", got)
	}
}

func TestBorderErrorRatioMismatchPanics(t *testing.T) {
	m := borderMesh(t, 16, 16, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	BorderErrorRatio(grid.NewComplex2DSize(8, 8), m, 2)
}
