// Package metrics provides the image-quality measures used by the
// experiments: reconstruction error with global-phase alignment, PSNR,
// and the seam-artifact score that quantifies the tile-border
// discontinuities of Fig 8.
package metrics

import (
	"fmt"
	"math"
	"math/cmplx"

	"ptychopath/internal/grid"
	"ptychopath/internal/tiling"
)

// AlignGlobalPhase returns a copy of a rotated by the global phase that
// best matches b (ptychographic reconstructions are defined up to a
// global phase factor).
func AlignGlobalPhase(a, b *grid.Complex2D) *grid.Complex2D {
	if a.Bounds != b.Bounds {
		panic(fmt.Sprintf("metrics: bounds mismatch %v vs %v", a.Bounds, b.Bounds))
	}
	var corr complex128
	for i := range a.Data {
		corr += a.Data[i] * cmplx.Conj(b.Data[i])
	}
	out := a.Clone()
	if m := cmplx.Abs(corr); m > 0 {
		out.Scale(cmplx.Conj(corr) * complex(1/m, 0))
	}
	return out
}

// ComplexRMSE returns the root-mean-square complex difference between a
// and b after global-phase alignment.
func ComplexRMSE(a, b *grid.Complex2D) float64 {
	al := AlignGlobalPhase(a, b)
	var s float64
	for i := range al.Data {
		d := al.Data[i] - b.Data[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	if len(al.Data) == 0 {
		return 0
	}
	return math.Sqrt(s / float64(len(al.Data)))
}

// PSNR returns the peak signal-to-noise ratio in dB between the phase
// maps of a and b (after global-phase alignment), using b's phase range
// as the peak.
func PSNR(a, b *grid.Complex2D) float64 {
	al := AlignGlobalPhase(a, b)
	pa, pb := al.Phase(), b.Phase()
	lo, hi := pb.MinMax()
	peak := hi - lo
	if peak == 0 {
		peak = 1
	}
	mse := 0.0
	for i := range pa.Data {
		d := pa.Data[i] - pb.Data[i]
		mse += d * d
	}
	mse /= float64(len(pa.Data))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(peak*peak/mse)
}

// SeamScore quantifies tile-border artifacts in a stitched
// reconstruction: the mean absolute first difference ACROSS interior
// tile boundaries divided by the mean absolute first difference
// everywhere else. A seam-free image scores ~1; voxel copy-paste seams
// (Fig 8a) score substantially higher.
func SeamScore(img *grid.Complex2D, mesh *tiling.Mesh) float64 {
	if !img.Bounds.Eq(mesh.Image) {
		panic(fmt.Sprintf("metrics: image %v does not match mesh %v", img.Bounds, mesh.Image))
	}
	seamSum, seamN := 0.0, 0
	restSum, restN := 0.0, 0

	isBoundaryX := map[int]bool{}
	for c := 0; c < mesh.Cols-1; c++ {
		isBoundaryX[mesh.Tile(0, c).X1] = true
	}
	isBoundaryY := map[int]bool{}
	for r := 0; r < mesh.Rows-1; r++ {
		isBoundaryY[mesh.Tile(r, 0).Y1] = true
	}

	b := img.Bounds
	// Horizontal differences: |img(x,y) - img(x-1,y)|; x is a column
	// boundary when a tile starts at x.
	for y := b.Y0; y < b.Y1; y++ {
		for x := b.X0 + 1; x < b.X1; x++ {
			d := cmplx.Abs(img.At(x, y) - img.At(x-1, y))
			if isBoundaryX[x] {
				seamSum += d
				seamN++
			} else {
				restSum += d
				restN++
			}
		}
	}
	// Vertical differences.
	for y := b.Y0 + 1; y < b.Y1; y++ {
		for x := b.X0; x < b.X1; x++ {
			d := cmplx.Abs(img.At(x, y) - img.At(x, y-1))
			if isBoundaryY[y] {
				seamSum += d
				seamN++
			} else {
				restSum += d
				restN++
			}
		}
	}
	if seamN == 0 || restN == 0 {
		return 1
	}
	seam := seamSum / float64(seamN)
	rest := restSum / float64(restN)
	if rest == 0 {
		if seam == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return seam / rest
}

// RelativeError returns ||a-b|| / ||b|| after phase alignment — a scale-
// free reconstruction fidelity score.
func RelativeError(a, b *grid.Complex2D) float64 {
	al := AlignGlobalPhase(a, b)
	var num, den float64
	for i := range al.Data {
		d := al.Data[i] - b.Data[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(b.Data[i])*real(b.Data[i]) + imag(b.Data[i])*imag(b.Data[i])
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// BorderErrorRatio measures how strongly |err| concentrates within a
// band of the given half-width around interior tile boundaries: the mean
// magnitude of err inside the band divided by the mean outside. A
// spatially uniform error scores ~1; the voxel copy-paste artifacts of
// the Halo Voxel Exchange baseline concentrate reconstruction error
// around tile borders and score higher.
func BorderErrorRatio(err *grid.Complex2D, mesh *tiling.Mesh, band int) float64 {
	if !err.Bounds.Eq(mesh.Image) {
		panic(fmt.Sprintf("metrics: error map %v does not match mesh %v", err.Bounds, mesh.Image))
	}
	nearBoundary := func(x, y int) bool {
		for c := 0; c < mesh.Cols-1; c++ {
			bx := mesh.Tile(0, c).X1
			if x >= bx-band && x < bx+band {
				return true
			}
		}
		for r := 0; r < mesh.Rows-1; r++ {
			by := mesh.Tile(r, 0).Y1
			if y >= by-band && y < by+band {
				return true
			}
		}
		return false
	}
	var inSum, outSum float64
	var inN, outN int
	b := err.Bounds
	for y := b.Y0; y < b.Y1; y++ {
		for x := b.X0; x < b.X1; x++ {
			m := cmplx.Abs(err.At(x, y))
			if nearBoundary(x, y) {
				inSum += m
				inN++
			} else {
				outSum += m
				outN++
			}
		}
	}
	if inN == 0 || outN == 0 {
		return 1
	}
	in := inSum / float64(inN)
	out := outSum / float64(outN)
	if out == 0 {
		if in == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return in / out
}
