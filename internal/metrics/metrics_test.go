package metrics

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/tiling"
)

func randImg(rng *rand.Rand, w, h int) *grid.Complex2D {
	a := grid.NewComplex2DSize(w, h)
	for i := range a.Data {
		a.Data[i] = cmplx.Exp(complex(0, rng.Float64())) * complex(1+0.1*rng.NormFloat64(), 0)
	}
	return a
}

func TestAlignGlobalPhaseRecoversRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := randImg(rng, 16, 16)
	a := b.Clone()
	a.Scale(cmplx.Exp(complex(0, 1.234))) // arbitrary global phase
	if ComplexRMSE(a, b) > 1e-12 {
		t.Fatalf("phase-rotated copy should align exactly: %g", ComplexRMSE(a, b))
	}
}

func TestComplexRMSEDetectsDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randImg(rng, 16, 16)
	b := randImg(rng, 16, 16)
	if ComplexRMSE(a, b) <= 0 {
		t.Fatal("different images must have positive RMSE")
	}
	if ComplexRMSE(a, a) > 1e-15 {
		t.Fatal("identical images must have zero RMSE")
	}
}

func TestAlignGlobalPhaseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	AlignGlobalPhase(grid.NewComplex2DSize(4, 4), grid.NewComplex2DSize(5, 4))
}

func TestPSNRInfiniteForIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randImg(rng, 8, 8)
	// Alignment introduces last-ulp roundoff, so "identical" means an
	// extremely high (or infinite) score rather than exactly +Inf.
	if got := PSNR(a, a); got < 100 {
		t.Fatalf("identical images PSNR = %g, want >= 100 dB", got)
	}
	b := a.Clone()
	b.Data[10] *= cmplx.Exp(complex(0, 0.5))
	if got := PSNR(b, a); math.IsInf(got, 1) || got < 10 {
		t.Fatalf("PSNR = %g, want finite and reasonably high", got)
	}
}

func TestSeamScoreNearOneForSmoothImage(t *testing.T) {
	// A smooth image has no preferred discontinuity at tile borders.
	img := grid.NewComplex2DSize(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			img.Set(x, y, cmplx.Exp(complex(0, 0.05*float64(x+y))))
		}
	}
	m, err := tiling.NewMesh(img.Bounds, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	score := SeamScore(img, m)
	if math.Abs(score-1) > 0.2 {
		t.Fatalf("smooth image seam score %g, want ~1", score)
	}
}

func TestSeamScoreDetectsSeams(t *testing.T) {
	// Inject a hard intensity step exactly at the tile boundaries —
	// the copy-paste artifact signature.
	img := grid.NewComplex2DSize(32, 32)
	m, err := tiling.NewMesh(img.Bounds, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			r, c := m.TileOf(x, y)
			v := 1.0 + 0.3*float64(r*2+c) // distinct plateau per tile
			img.Set(x, y, complex(v, 0))
		}
	}
	score := SeamScore(img, m)
	if score < 10 {
		t.Fatalf("plateaued tiles seam score %g, want >> 1", score)
	}
}

func TestSeamScoreSingleTile(t *testing.T) {
	img := grid.NewComplex2DSize(16, 16)
	m, err := tiling.NewMesh(img.Bounds, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := SeamScore(img, m); got != 1 {
		t.Fatalf("1x1 mesh seam score %g, want 1 (no boundaries)", got)
	}
}

func TestSeamScoreBoundsMismatchPanics(t *testing.T) {
	m, err := tiling.NewMesh(grid.RectWH(0, 0, 16, 16), 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	SeamScore(grid.NewComplex2DSize(8, 8), m)
}

func TestRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := randImg(rng, 8, 8)
	if RelativeError(b, b) > 1e-15 {
		t.Fatal("identical images must have zero relative error")
	}
	a := b.Clone()
	for i := range a.Data {
		a.Data[i] += complex(0.1, 0)
	}
	e := RelativeError(a, b)
	if e <= 0 || e > 1 {
		t.Fatalf("relative error %g out of expected range", e)
	}
}
