package dataio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

func streamTestProblem(t testing.TB, slices int) *solver.Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{Cols: 3, Rows: 3, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, slices, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// TestStreamRoundTrip checks the core PTYCHSv1 guarantee: a dataset
// written as header + chunked frames + EOF replays into a problem
// bit-identical to the original — the stream is a lossless journal of
// the acquisition.
func TestStreamRoundTrip(t *testing.T) {
	for _, slices := range []int{1, 2} {
		prob := streamTestProblem(t, slices)
		var buf bytes.Buffer
		if err := WriteStream(&buf, prob, 2); err != nil {
			t.Fatal(err)
		}
		got, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.WindowN != prob.WindowN || got.Slices != prob.Slices {
			t.Fatalf("geometry: got window %d slices %d", got.WindowN, got.Slices)
		}
		if got.Pattern.N() != prob.Pattern.N() {
			t.Fatalf("locations: got %d want %d", got.Pattern.N(), prob.Pattern.N())
		}
		if !got.Pattern.Bounds().Eq(prob.Pattern.Bounds()) {
			t.Fatalf("image bounds: got %v want %v", got.Pattern.Bounds(), prob.Pattern.Bounds())
		}
		for i, l := range got.Pattern.Locations {
			if l != prob.Pattern.Locations[i] {
				t.Fatalf("location %d: got %+v want %+v", i, l, prob.Pattern.Locations[i])
			}
		}
		for i, m := range got.Meas {
			for k, v := range m.Data {
				if v != prob.Meas[i].Data[k] {
					t.Fatalf("measurement %d pixel %d: got %v want %v", i, k, v, prob.Meas[i].Data[k])
				}
			}
		}
		if md := got.Probe.MaxDiff(prob.Probe); md != 0 {
			t.Fatalf("probe differs by %g", md)
		}
		if (got.Prop == nil) != (prob.Prop == nil) {
			t.Fatalf("propagator presence: got %v want %v", got.Prop != nil, prob.Prop != nil)
		}
		// And it round-trips onward into a canonical PTYCHOv1 file.
		var canon bytes.Buffer
		if err := Write(&canon, got); err != nil {
			t.Fatalf("replayed problem does not serialize as PTYCHOv1: %v", err)
		}
	}
}

// TestStreamTruncatedKeepsPrefix: a stream cut mid-acquisition (no EOF
// marker) replays the frames that fully arrived.
func TestStreamTruncatedKeepsPrefix(t *testing.T) {
	prob := streamTestProblem(t, 1)
	var hdr bytes.Buffer
	if err := WriteStreamHeader(&hdr, HeaderFromProblem(prob)); err != nil {
		t.Fatal(err)
	}
	frames := FramesFromProblem(prob)
	if err := WriteFrameChunk(&hdr, prob.WindowN, frames[:4]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStream(bytes.NewReader(hdr.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pattern.N() != 4 {
		t.Fatalf("truncated stream replayed %d locations, want 4", got.Pattern.N())
	}
}

// TestChunkCorruptionDetected: a payload bit flip fails the CRC with
// the typed error; a length lie fails before any interpretation.
func TestChunkCorruptionDetected(t *testing.T) {
	prob := streamTestProblem(t, 1)
	frames := FramesFromProblem(prob)
	var buf bytes.Buffer
	if err := WriteFrameChunk(&buf, prob.WindowN, frames[:2]); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flip := append([]byte(nil), raw...)
	flip[20] ^= 0xFF // inside the payload
	if _, _, err := ReadChunk(bytes.NewReader(flip), prob.WindowN); !errors.Is(err, ErrChunkCorrupt) {
		t.Errorf("payload flip: got %v, want ErrChunkCorrupt", err)
	}

	// Length that is not 8 + k*frameBytes.
	lie := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(lie[1:9], uint64(len(raw))+3)
	if _, _, err := ReadChunk(bytes.NewReader(lie), prob.WindowN); !errors.Is(err, ErrChunkCorrupt) {
		t.Errorf("length lie: got %v, want ErrChunkCorrupt", err)
	}

	// A huge declared frame count is a bounds error before allocation.
	huge := append([]byte(nil), raw...)
	fb := uint64(frameBytes(prob.WindowN))
	binary.LittleEndian.PutUint64(huge[1:9], 8+(maxChunkFrames+1)*fb)
	if _, _, err := ReadChunk(bytes.NewReader(huge), prob.WindowN); !errors.Is(err, ErrHeaderBounds) {
		t.Errorf("huge count: got %v, want ErrHeaderBounds", err)
	}

	// A valid-shaped length far beyond the actual body must fail at
	// EOF without allocating the declared size (the decoder grows its
	// buffer only as bytes actually arrive).
	lying := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(lying[1:9], 8+1_000_000*fb) // ~0.5 GB declared, ~70 KB present
	if _, _, err := ReadChunk(bytes.NewReader(lying), prob.WindowN); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("lying length: got %v, want a payload read error", err)
	}

	// Unknown chunk kind.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, _, err := ReadChunk(bytes.NewReader(bad), prob.WindowN); !errors.Is(err, ErrChunkCorrupt) {
		t.Errorf("unknown kind: got %v, want ErrChunkCorrupt", err)
	}

	// Exhausted reader reports io.EOF so pollers can distinguish
	// "no chunk yet" from corruption.
	if _, _, err := ReadChunk(bytes.NewReader(nil), prob.WindowN); !errors.Is(err, io.EOF) {
		t.Errorf("empty reader: got %v, want io.EOF", err)
	}

	// EOF marker round-trips.
	var eofBuf bytes.Buffer
	if err := WriteEOFChunk(&eofBuf); err != nil {
		t.Fatal(err)
	}
	if _, eof, err := ReadChunk(bytes.NewReader(eofBuf.Bytes()), prob.WindowN); err != nil || !eof {
		t.Errorf("EOF chunk: eof=%v err=%v", eof, err)
	}
}

// patchInt64 overwrites the little-endian int64 at byte offset off.
func patchInt64(data []byte, off int, v int64) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(out[off:off+8], uint64(v))
	return out
}

// TestHeaderBoundsTyped: absurd header dimensions in every container
// format fail with the typed ErrHeaderBounds before the decoder
// allocates for the payload.
func TestHeaderBoundsTyped(t *testing.T) {
	prob := streamTestProblem(t, 2)

	// PTYCHOv1: header starts at byte 8; fields windowN, slices,
	// imageW, imageH, numLocations.
	var ds bytes.Buffer
	if err := Write(&ds, prob); err != nil {
		t.Fatal(err)
	}
	dsRaw := ds.Bytes()
	for name, patched := range map[string][]byte{
		"windowN huge": patchInt64(dsRaw, 8, 1<<40),
		"windowN zero": patchInt64(dsRaw, 8, 0),
		"slices huge":  patchInt64(dsRaw, 16, 1<<40),
		"imageW huge":  patchInt64(dsRaw, 24, 1<<40),
		"imageH neg":   patchInt64(dsRaw, 32, -3),
		"numLoc huge":  patchInt64(dsRaw, 40, 1<<40),
		"numLoc neg":   patchInt64(dsRaw, 40, -1),
	} {
		if _, err := Read(bytes.NewReader(patched)); !errors.Is(err, ErrHeaderBounds) {
			t.Errorf("PTYCHOv1 %s: got %v, want ErrHeaderBounds", name, err)
		}
	}

	// OBJCKv1: header starts at byte 8; fields slices, x0, y0, w, h.
	var ob bytes.Buffer
	if err := WriteObject(&ob, phantom.RandomObject(8, 8, 2, 2).Slices); err != nil {
		t.Fatal(err)
	}
	obRaw := ob.Bytes()
	for name, patched := range map[string][]byte{
		"slices huge": patchInt64(obRaw, 8, 1<<40),
		"w huge":      patchInt64(obRaw, 32, 1<<40),
		"h zero":      patchInt64(obRaw, 40, 0),
	} {
		if _, err := ReadObject(bytes.NewReader(patched)); !errors.Is(err, ErrHeaderBounds) {
			t.Errorf("OBJCKv1 %s: got %v, want ErrHeaderBounds", name, err)
		}
	}

	// PTYCHSv1: header starts at byte 8; fields windowN, slices,
	// imageW, imageH.
	var st bytes.Buffer
	if err := WriteStreamHeader(&st, HeaderFromProblem(prob)); err != nil {
		t.Fatal(err)
	}
	stRaw := st.Bytes()
	for name, patched := range map[string][]byte{
		"windowN huge": patchInt64(stRaw, 8, 1<<40),
		"slices zero":  patchInt64(stRaw, 16, 0),
		"imageW huge":  patchInt64(stRaw, 24, 1<<40),
	} {
		if _, err := ReadStreamHeader(bytes.NewReader(patched)); !errors.Is(err, ErrHeaderBounds) {
			t.Errorf("PTYCHSv1 %s: got %v, want ErrHeaderBounds", name, err)
		}
	}
}
