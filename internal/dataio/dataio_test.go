package dataio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

func sampleProblem(t testing.TB, slices int) *solver.Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: 3, Rows: 3, StepPix: 5, RadiusPix: 6, MarginPix: 10, Jitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, slices, 9)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestRoundTripMultiSlice(t *testing.T) {
	prob := sampleProblem(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, prob); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WindowN != prob.WindowN || got.Slices != prob.Slices {
		t.Fatalf("header mismatch: %d/%d", got.WindowN, got.Slices)
	}
	if got.Pattern.N() != prob.Pattern.N() {
		t.Fatal("location count mismatch")
	}
	for i, l := range prob.Pattern.Locations {
		if got.Pattern.Locations[i] != l {
			t.Fatalf("location %d mismatch: %+v vs %+v", i, got.Pattern.Locations[i], l)
		}
	}
	if got.Probe.MaxDiff(prob.Probe) > 0 {
		t.Fatal("probe mismatch")
	}
	if got.Prop == nil || got.Prop.MaxDiff(prob.Prop) > 0 {
		t.Fatal("propagator mismatch")
	}
	for i := range prob.Meas {
		if got.Meas[i].MaxDiff(prob.Meas[i]) > 0 {
			t.Fatalf("measurement %d mismatch", i)
		}
	}
	// The loaded problem must reconstruct identically.
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)
	a, err := solver.Reconstruct(prob, init.Slices, solver.Options{StepSize: 0.02, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := solver.Reconstruct(got, init.Slices, solver.Options{StepSize: 0.02, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Slices[0].MaxDiff(b.Slices[0]) > 0 {
		t.Fatal("reconstruction from loaded data differs")
	}
}

func TestRoundTripSingleSliceNoProp(t *testing.T) {
	prob := sampleProblem(t, 1)
	if prob.Prop != nil {
		t.Fatal("test premise: single slice has no propagator")
	}
	var buf bytes.Buffer
	if err := Write(&buf, prob); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prop != nil {
		t.Fatal("propagator should be absent")
	}
}

func TestFileRoundTrip(t *testing.T) {
	prob := sampleProblem(t, 2)
	path := filepath.Join(t.TempDir(), "ds.ptycho")
	if err := WriteFile(path, prob); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pattern.N() != prob.Pattern.N() {
		t.Fatal("mismatch after file round trip")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOTPTYCHOxxxxxxxxxxxxxxxxxxx"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("got %v", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	prob := sampleProblem(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, prob); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, 10, 100, len(data) / 2, len(data) - 8} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsImplausibleHeader(t *testing.T) {
	prob := sampleProblem(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, prob); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt windowN (first header int64, little-endian at offset 8).
	data[8] = 0xFF
	data[9] = 0xFF
	data[10] = 0xFF
	data[11] = 0x7F
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("implausible header accepted")
	}
}

func TestWriteRejectsInvalidProblem(t *testing.T) {
	prob := sampleProblem(t, 1)
	prob.Meas = prob.Meas[:2] // break invariant
	var buf bytes.Buffer
	if err := Write(&buf, prob); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
