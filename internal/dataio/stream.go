package dataio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"ptychopath/internal/grid"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

// PTYCHSv1 is the incremental companion of PTYCHOv1: a dataset whose
// frames arrive while the acquisition is still running. The header
// carries only geometry and probe metadata — everything the streaming
// reconstruction engine needs to open a job before a single
// diffraction pattern exists — and is followed by a sequence of
// framed, CRC-protected chunks that append probe locations with their
// measured amplitudes. The format is append-only (a writer never seeks
// back), so it doubles as a spool/journal, and a complete stream
// replays losslessly into a canonical PTYCHOv1 problem.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "PTYCHSv1"
//	header  8 x int64: windowN, slices, imageW, imageH, hasProp (0/1),
//	                   stepPix*1e6, radiusPix*1e6, reserved
//	probe   2*windowN^2 float64 (re, im interleaved)
//	prop    2*windowN^2 float64 (present when hasProp == 1)
//	chunks  any number of:
//	        kind    [1]byte: 'F' (frames) or 'E' (end of stream)
//	        length  int64: payload byte count
//	        payload length bytes
//	        crc     uint32: IEEE CRC-32 of the payload
//
// An 'F' payload is int64 count followed by count frames, each
// int64 index, float64 x, y, radius, then windowN^2 float64
// amplitudes. An 'E' payload is empty; it marks a cleanly closed
// acquisition. Chunks after 'E' are an error. Full byte-level spec
// with worked offsets: docs/FORMATS.md.

var streamMagic = [8]byte{'P', 'T', 'Y', 'C', 'H', 'S', 'v', '1'}

// Chunk kind bytes.
const (
	chunkFrames = 'F'
	chunkEOF    = 'E'
)

// maxChunkFrames bounds the frame count a single chunk may declare.
const maxChunkFrames = 1 << 20

// ErrChunkCorrupt is returned when a chunk's CRC does not match its
// payload, or the payload length disagrees with its declared frame
// count — the stream was torn or tampered with in transit.
var ErrChunkCorrupt = errors.New("dataio: stream chunk corrupt")

// StreamHeader is the metadata a PTYCHSv1 stream opens with: the full
// acquisition geometry, but no frames.
type StreamHeader struct {
	WindowN int
	Slices  int
	ImageW  int
	ImageH  int
	StepPix float64
	// RadiusPix is the probe circle radius in pixels.
	RadiusPix float64
	Probe     *grid.Complex2D
	// Prop is the inter-slice propagator; nil in single-slice mode.
	Prop *grid.Complex2D
}

// Validate reports structural problems with the header.
func (h *StreamHeader) Validate() error {
	if err := checkDatasetHeader(h.WindowN, h.Slices, h.ImageW, h.ImageH, 0); err != nil {
		return err
	}
	if h.Probe == nil || h.Probe.W() != h.WindowN || h.Probe.H() != h.WindowN {
		return fmt.Errorf("dataio: stream probe must be %dx%d", h.WindowN, h.WindowN)
	}
	if h.Prop != nil && (h.Prop.W() != h.WindowN || h.Prop.H() != h.WindowN) {
		return fmt.Errorf("dataio: stream propagator must be %dx%d", h.WindowN, h.WindowN)
	}
	return nil
}

// NewProblem returns an empty (zero-location) solver.Problem with the
// header's geometry — the seed the streaming engine grows with
// Problem.AppendLocations as frames arrive.
func (h *StreamHeader) NewProblem() *solver.Problem {
	return &solver.Problem{
		Pattern: &scan.Pattern{
			ImageW: h.ImageW, ImageH: h.ImageH,
			StepPix: h.StepPix, RadiusPix: h.RadiusPix,
		},
		Probe:   h.Probe,
		Prop:    h.Prop,
		WindowN: h.WindowN,
		Slices:  h.Slices,
	}
}

// HeaderFromProblem derives the stream header of an existing dataset —
// what ptychofeed sends before replaying the frames.
func HeaderFromProblem(prob *solver.Problem) *StreamHeader {
	return &StreamHeader{
		WindowN: prob.WindowN, Slices: prob.Slices,
		ImageW: prob.Pattern.ImageW, ImageH: prob.Pattern.ImageH,
		StepPix: prob.Pattern.StepPix, RadiusPix: prob.Pattern.RadiusPix,
		Probe: prob.Probe, Prop: prob.Prop,
	}
}

// Frame is one acquired diffraction pattern: where the probe was and
// what the detector measured.
type Frame struct {
	Loc  scan.Location
	Meas *grid.Float2D
}

// WriteStreamHeader serializes the stream opening (magic, header,
// probe, propagator) to w.
func WriteStreamHeader(w io.Writer, h *StreamHeader) error {
	if err := h.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return err
	}
	hasProp := int64(0)
	if h.Prop != nil {
		hasProp = 1
	}
	header := []int64{
		int64(h.WindowN), int64(h.Slices),
		int64(h.ImageW), int64(h.ImageH), hasProp,
		int64(math.Round(h.StepPix * 1e6)),
		int64(math.Round(h.RadiusPix * 1e6)),
		0,
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := writeComplex(bw, h.Probe); err != nil {
		return err
	}
	if h.Prop != nil {
		if err := writeComplex(bw, h.Prop); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStreamHeader deserializes the stream opening from r.
func ReadStreamHeader(r io.Reader) (*StreamHeader, error) {
	br := bufio.NewReader(r)
	return readStreamHeader(br)
}

func readStreamHeader(br *bufio.Reader) (*StreamHeader, error) {
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataio: reading stream magic: %w", err)
	}
	if m != streamMagic {
		return nil, fmt.Errorf("dataio: bad magic %q (not a PTYCHSv1 stream)", m)
	}
	header := make([]int64, 8)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("dataio: reading stream header: %w", err)
	}
	h := &StreamHeader{
		WindowN: int(header[0]), Slices: int(header[1]),
		ImageW: int(header[2]), ImageH: int(header[3]),
		StepPix:   float64(header[5]) / 1e6,
		RadiusPix: float64(header[6]) / 1e6,
	}
	// Bounds before the probe-sized allocations below.
	if err := checkDatasetHeader(h.WindowN, h.Slices, h.ImageW, h.ImageH, 0); err != nil {
		return nil, err
	}
	var err error
	if h.Probe, err = readComplex(br, h.WindowN); err != nil {
		return nil, fmt.Errorf("dataio: reading stream probe: %w", err)
	}
	if header[4] == 1 {
		if h.Prop, err = readComplex(br, h.WindowN); err != nil {
			return nil, fmt.Errorf("dataio: reading stream propagator: %w", err)
		}
	}
	return h, nil
}

// frameBytes is the encoded size of one frame for the given window.
func frameBytes(windowN int) int { return 8 + 3*8 + 8*windowN*windowN }

// WriteFrameChunk appends one CRC-framed chunk of frames to w. Every
// frame's measurement must be windowN x windowN.
func WriteFrameChunk(w io.Writer, windowN int, frames []Frame) error {
	if len(frames) == 0 {
		return fmt.Errorf("dataio: empty frame chunk")
	}
	if len(frames) > maxChunkFrames {
		return fmt.Errorf("%w: %d frames in one chunk (max %d)", ErrHeaderBounds, len(frames), maxChunkFrames)
	}
	payload := bytes.NewBuffer(make([]byte, 0, 8+len(frames)*frameBytes(windowN)))
	binary.Write(payload, binary.LittleEndian, int64(len(frames)))
	for i, f := range frames {
		if f.Meas == nil || f.Meas.W() != windowN || f.Meas.H() != windowN {
			return fmt.Errorf("dataio: chunk frame %d measurement is not %dx%d", i, windowN, windowN)
		}
		binary.Write(payload, binary.LittleEndian, int64(f.Loc.Index))
		binary.Write(payload, binary.LittleEndian, []float64{f.Loc.X, f.Loc.Y, f.Loc.Radius})
		binary.Write(payload, binary.LittleEndian, f.Meas.Data)
	}
	return writeChunk(w, chunkFrames, payload.Bytes())
}

// WriteEOFChunk appends the end-of-stream marker to w.
func WriteEOFChunk(w io.Writer) error {
	return writeChunk(w, chunkEOF, nil)
}

func writeChunk(w io.Writer, kind byte, payload []byte) error {
	bw := bufio.NewWriter(w)
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(payload))); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(payload)); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadChunk reads one framed chunk for a stream with the given window
// size. It returns the decoded frames for an 'F' chunk, eof == true
// for an 'E' chunk, and io.EOF when r is exhausted before a chunk
// starts. CRC or length mismatches return ErrChunkCorrupt; implausible
// frame counts return ErrHeaderBounds — both before the payload is
// interpreted.
func ReadChunk(r io.Reader, windowN int) (frames []Frame, eof bool, err error) {
	if windowN <= 0 || windowN > maxWindowN {
		return nil, false, fmt.Errorf("%w: window %d", ErrHeaderBounds, windowN)
	}
	// No buffering here: every read is exact-size, so ReadChunk never
	// consumes bytes past its own chunk — callers interleave calls on a
	// shared reader (ReadStream) or hand over an HTTP body.
	br := r
	var kind [1]byte
	if _, err := io.ReadFull(br, kind[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, false, io.EOF
		}
		return nil, false, fmt.Errorf("dataio: reading chunk kind: %w", err)
	}
	var length int64
	if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
		return nil, false, fmt.Errorf("dataio: reading chunk length: %w", err)
	}
	switch kind[0] {
	case chunkEOF:
		if length != 0 {
			return nil, false, fmt.Errorf("%w: EOF chunk with %d payload bytes", ErrChunkCorrupt, length)
		}
		var sum uint32
		if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
			return nil, false, fmt.Errorf("dataio: reading chunk crc: %w", err)
		}
		if sum != crc32.ChecksumIEEE(nil) {
			return nil, false, fmt.Errorf("%w: EOF chunk crc %08x", ErrChunkCorrupt, sum)
		}
		return nil, true, nil
	case chunkFrames:
		fb := int64(frameBytes(windowN))
		// The declared length must be exactly a count field plus a
		// whole number of frames, below the frame cap.
		if length < 8+fb || (length-8)%fb != 0 {
			return nil, false, fmt.Errorf("%w: frame chunk length %d not 8+k*%d", ErrChunkCorrupt, length, fb)
		}
		if n := (length - 8) / fb; n > maxChunkFrames {
			return nil, false, fmt.Errorf("%w: %d frames in one chunk (max %d)", ErrHeaderBounds, n, maxChunkFrames)
		}
		// Never trust the declared length for the allocation: copy
		// through a growing buffer so memory tracks the bytes that
		// ACTUALLY arrive — a 17-byte request declaring a terabyte
		// chunk fails at EOF having allocated almost nothing.
		var pbuf bytes.Buffer
		pbuf.Grow(int(min(length, 1<<20)))
		if _, err := io.CopyN(&pbuf, br, length); err != nil {
			if errors.Is(err, io.EOF) {
				// Bare io.EOF is reserved for "no chunk starts here";
				// running dry MID-payload is a torn chunk.
				err = io.ErrUnexpectedEOF
			}
			return nil, false, fmt.Errorf("dataio: reading chunk payload: %w", err)
		}
		payload := pbuf.Bytes()
		var sum uint32
		if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
			return nil, false, fmt.Errorf("dataio: reading chunk crc: %w", err)
		}
		if sum != crc32.ChecksumIEEE(payload) {
			return nil, false, fmt.Errorf("%w: crc %08x != %08x", ErrChunkCorrupt, sum, crc32.ChecksumIEEE(payload))
		}
		return decodeFramePayload(payload, windowN)
	default:
		return nil, false, fmt.Errorf("%w: unknown chunk kind %q", ErrChunkCorrupt, kind[0])
	}
}

func decodeFramePayload(payload []byte, windowN int) ([]Frame, bool, error) {
	pr := bytes.NewReader(payload)
	var count int64
	binary.Read(pr, binary.LittleEndian, &count)
	if want := int64(len(payload)-8) / int64(frameBytes(windowN)); count != want {
		return nil, false, fmt.Errorf("%w: chunk declares %d frames, payload holds %d", ErrChunkCorrupt, count, want)
	}
	frames := make([]Frame, count)
	coords := make([]float64, 3)
	for i := range frames {
		var idx int64
		binary.Read(pr, binary.LittleEndian, &idx)
		binary.Read(pr, binary.LittleEndian, coords)
		m := grid.NewFloat2DSize(windowN, windowN)
		binary.Read(pr, binary.LittleEndian, m.Data)
		frames[i] = Frame{
			Loc:  scan.Location{Index: int(idx), X: coords[0], Y: coords[1], Radius: coords[2]},
			Meas: m,
		}
	}
	return frames, false, nil
}

// FramesFromProblem converts a batch dataset's locations and
// measurements into frames in acquisition order — the replay source
// for ptychofeed and the streaming tests.
func FramesFromProblem(prob *solver.Problem) []Frame {
	frames := make([]Frame, prob.Pattern.N())
	for i, l := range prob.Pattern.Locations {
		frames[i] = Frame{Loc: l, Meas: prob.Meas[i]}
	}
	return frames
}

// WriteStream serializes a complete dataset as a PTYCHSv1 stream:
// header, frames in chunks of chunkSize, then the EOF marker. The
// output replays into a problem identical to prob.
func WriteStream(w io.Writer, prob *solver.Problem, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 64
	}
	if err := prob.Validate(); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	if err := WriteStreamHeader(w, HeaderFromProblem(prob)); err != nil {
		return err
	}
	frames := FramesFromProblem(prob)
	for lo := 0; lo < len(frames); lo += chunkSize {
		hi := min(lo+chunkSize, len(frames))
		if err := WriteFrameChunk(w, prob.WindowN, frames[lo:hi]); err != nil {
			return err
		}
	}
	return WriteEOFChunk(w)
}

// ReadStream replays a complete PTYCHSv1 stream from r into a
// canonical problem: header, every frame chunk in order, until the EOF
// marker (or the end of r, for a stream whose acquisition was cut
// short). This is the bridge back to the batch world — the returned
// problem serializes to PTYCHOv1 with Write.
func ReadStream(r io.Reader) (*solver.Problem, error) {
	br := bufio.NewReader(r)
	h, err := readStreamHeader(br)
	if err != nil {
		return nil, err
	}
	prob := h.NewProblem()
	for {
		frames, eof, err := ReadChunk(br, h.WindowN)
		if errors.Is(err, io.EOF) {
			break // truncated stream: keep what arrived
		}
		if err != nil {
			return nil, err
		}
		if eof {
			break
		}
		locs := make([]scan.Location, len(frames))
		meas := make([]*grid.Float2D, len(frames))
		for i, f := range frames {
			locs[i], meas[i] = f.Loc, f.Meas
		}
		if err := prob.AppendLocations(locs, meas); err != nil {
			return nil, fmt.Errorf("dataio: replaying stream: %w", err)
		}
	}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("dataio: replayed problem invalid: %w", err)
	}
	return prob, nil
}

// ReadStreamFile replays a PTYCHSv1 stream from the named file.
func ReadStreamFile(path string) (*solver.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return ReadStream(f)
}
