package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"ptychopath/internal/grid"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/wire"
)

// PTYCHSv2 is the incremental companion of PTYCHOv1: a dataset whose
// frames arrive while the acquisition is still running. The header
// carries only geometry and probe metadata — everything the streaming
// reconstruction engine needs to open a job before a single
// diffraction pattern exists — and is followed by a sequence of
// framed, CRC-protected chunks that append probe locations with their
// measured amplitudes. The format is append-only (a writer never seeks
// back), so it doubles as a spool/journal, and a complete stream
// replays losslessly into a canonical PTYCHOv1 problem.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "PTYCHSv2" ("PTYCHSv1" accepted on read)
//	header  8 x int64: windowN, slices, imageW, imageH, hasProp (0/1),
//	                   stepPix*1e6, radiusPix*1e6, reserved
//	probe   2*windowN^2 float64 (re, im interleaved)
//	prop    2*windowN^2 float64 (present when hasProp == 1)
//	chunks  any number of:
//	        kind    [1]byte: 'F' (frames) or 'E' (end of stream)
//	        length  int64: payload byte count
//	        payload length bytes
//	        crc     uint32: CRC-32 of the payload
//
// An 'F' payload is int64 count followed by count frames, each
// int64 index, float64 x, y, radius, then windowN^2 float64
// amplitudes. An 'E' payload is empty; it marks a cleanly closed
// acquisition. Chunks after 'E' are an error.
//
// Version 2 differs from version 1 only in checksum generation: v2
// chunks carry Castagnoli CRC-32 (hardware-accelerated), v1 chunks
// IEEE. The decoder accepts either generation per chunk regardless of
// the magic, so a v1 spool appended by a v2 writer still replays.
// Full byte-level spec with worked offsets: docs/FORMATS.md.

var (
	streamMagic   = [8]byte{'P', 'T', 'Y', 'C', 'H', 'S', 'v', '2'}
	streamMagicV1 = [8]byte{'P', 'T', 'Y', 'C', 'H', 'S', 'v', '1'}
)

// Chunk kind bytes.
const (
	chunkFrames = 'F'
	chunkEOF    = 'E'
)

// maxChunkFrames bounds the frame count a single chunk may declare.
const maxChunkFrames = 1 << 20

// ErrChunkCorrupt is returned when a chunk's CRC does not match its
// payload, or the payload length disagrees with its declared frame
// count — the stream was torn or tampered with in transit.
var ErrChunkCorrupt = errors.New("dataio: stream chunk corrupt")

// StreamHeader is the metadata a PTYCHSv2 stream opens with: the full
// acquisition geometry, but no frames.
type StreamHeader struct {
	WindowN int
	Slices  int
	ImageW  int
	ImageH  int
	StepPix float64
	// RadiusPix is the probe circle radius in pixels.
	RadiusPix float64
	Probe     *grid.Complex2D
	// Prop is the inter-slice propagator; nil in single-slice mode.
	Prop *grid.Complex2D
}

// Validate reports structural problems with the header.
func (h *StreamHeader) Validate() error {
	if err := checkDatasetHeader(h.WindowN, h.Slices, h.ImageW, h.ImageH, 0); err != nil {
		return err
	}
	if h.Probe == nil || h.Probe.W() != h.WindowN || h.Probe.H() != h.WindowN {
		return fmt.Errorf("dataio: stream probe must be %dx%d", h.WindowN, h.WindowN)
	}
	if h.Prop != nil && (h.Prop.W() != h.WindowN || h.Prop.H() != h.WindowN) {
		return fmt.Errorf("dataio: stream propagator must be %dx%d", h.WindowN, h.WindowN)
	}
	return nil
}

// NewProblem returns an empty (zero-location) solver.Problem with the
// header's geometry — the seed the streaming engine grows with
// Problem.AppendLocations as frames arrive.
func (h *StreamHeader) NewProblem() *solver.Problem {
	return &solver.Problem{
		Pattern: &scan.Pattern{
			ImageW: h.ImageW, ImageH: h.ImageH,
			StepPix: h.StepPix, RadiusPix: h.RadiusPix,
		},
		Probe:   h.Probe,
		Prop:    h.Prop,
		WindowN: h.WindowN,
		Slices:  h.Slices,
	}
}

// HeaderFromProblem derives the stream header of an existing dataset —
// what ptychofeed sends before replaying the frames.
func HeaderFromProblem(prob *solver.Problem) *StreamHeader {
	return &StreamHeader{
		WindowN: prob.WindowN, Slices: prob.Slices,
		ImageW: prob.Pattern.ImageW, ImageH: prob.Pattern.ImageH,
		StepPix: prob.Pattern.StepPix, RadiusPix: prob.Pattern.RadiusPix,
		Probe: prob.Probe, Prop: prob.Prop,
	}
}

// Frame is one acquired diffraction pattern: where the probe was and
// what the detector measured.
type Frame struct {
	Loc  scan.Location
	Meas *grid.Float2D
}

// WriteStreamHeader serializes the stream opening (magic, header,
// probe, propagator) to w.
func WriteStreamHeader(w io.Writer, h *StreamHeader) error {
	if err := h.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return err
	}
	hasProp := int64(0)
	if h.Prop != nil {
		hasProp = 1
	}
	header := []int64{
		int64(h.WindowN), int64(h.Slices),
		int64(h.ImageW), int64(h.ImageH), hasProp,
		int64(math.Round(h.StepPix * 1e6)),
		int64(math.Round(h.RadiusPix * 1e6)),
		0,
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := writeComplex(bw, h.Probe); err != nil {
		return err
	}
	if h.Prop != nil {
		if err := writeComplex(bw, h.Prop); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStreamHeader deserializes the stream opening from r.
func ReadStreamHeader(r io.Reader) (*StreamHeader, error) {
	br := bufio.NewReader(r)
	return readStreamHeader(br)
}

func readStreamHeader(br *bufio.Reader) (*StreamHeader, error) {
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataio: reading stream magic: %w", err)
	}
	if m != streamMagic && m != streamMagicV1 {
		return nil, fmt.Errorf("dataio: bad magic %q (not a PTYCHSv1/v2 stream)", m)
	}
	header := make([]int64, 8)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("dataio: reading stream header: %w", err)
	}
	h := &StreamHeader{
		WindowN: int(header[0]), Slices: int(header[1]),
		ImageW: int(header[2]), ImageH: int(header[3]),
		StepPix:   float64(header[5]) / 1e6,
		RadiusPix: float64(header[6]) / 1e6,
	}
	// Bounds before the probe-sized allocations below.
	if err := checkDatasetHeader(h.WindowN, h.Slices, h.ImageW, h.ImageH, 0); err != nil {
		return nil, err
	}
	var err error
	if h.Probe, err = readComplex(br, h.WindowN); err != nil {
		return nil, fmt.Errorf("dataio: reading stream probe: %w", err)
	}
	if header[4] == 1 {
		if h.Prop, err = readComplex(br, h.WindowN); err != nil {
			return nil, fmt.Errorf("dataio: reading stream propagator: %w", err)
		}
	}
	return h, nil
}

// frameBytes is the encoded size of one frame for the given window.
func frameBytes(windowN int) int { return 8 + 3*8 + 8*windowN*windowN }

// ChunkEncoder owns the scratch buffer a chunk is framed in. One
// encoder reused across appends writes a whole stream with amortized
// zero allocations: the chunk is built in place (header, payload,
// checksum) and handed to w in a single Write call.
//
// The zero value is ready to use. Not safe for concurrent use; the
// package-level WriteFrameChunk pools encoders for callers without a
// natural place to keep one.
type ChunkEncoder struct {
	buf []byte
}

// WriteFrameChunk appends one CRC-framed chunk of frames to w. Every
// frame's measurement must be windowN x windowN.
func (e *ChunkEncoder) WriteFrameChunk(w io.Writer, windowN int, frames []Frame) error {
	if len(frames) == 0 {
		return fmt.Errorf("dataio: empty frame chunk")
	}
	if len(frames) > maxChunkFrames {
		return fmt.Errorf("%w: %d frames in one chunk (max %d)", ErrHeaderBounds, len(frames), maxChunkFrames)
	}
	need := wire.ChunkOverhead + 8 + len(frames)*frameBytes(windowN)
	if cap(e.buf) < need {
		e.buf = make([]byte, 0, need)
	}
	buf, start := wire.BeginChunk(e.buf[:0], chunkFrames)
	buf = wire.AppendInt64(buf, int64(len(frames)))
	for i, f := range frames {
		if f.Meas == nil || f.Meas.W() != windowN || f.Meas.H() != windowN {
			e.buf = buf
			return fmt.Errorf("dataio: chunk frame %d measurement is not %dx%d", i, windowN, windowN)
		}
		buf = wire.AppendInt64(buf, int64(f.Loc.Index))
		buf = wire.AppendFloat64(buf, f.Loc.X)
		buf = wire.AppendFloat64(buf, f.Loc.Y)
		buf = wire.AppendFloat64(buf, f.Loc.Radius)
		buf = wire.AppendFloat64s(buf, f.Meas.Data)
	}
	buf = wire.EndChunk(buf, start, wire.GenCurrent)
	e.buf = buf
	_, err := w.Write(buf)
	return err
}

var chunkEncoders = sync.Pool{New: func() any { return new(ChunkEncoder) }}

// WriteFrameChunk appends one CRC-framed chunk of frames to w using a
// pooled encoder. Every frame's measurement must be windowN x windowN.
// Callers on a hot path should hold their own ChunkEncoder instead.
func WriteFrameChunk(w io.Writer, windowN int, frames []Frame) error {
	e := chunkEncoders.Get().(*ChunkEncoder)
	defer chunkEncoders.Put(e)
	return e.WriteFrameChunk(w, windowN, frames)
}

// WriteEOFChunk appends the end-of-stream marker to w.
func WriteEOFChunk(w io.Writer) error {
	var arr [wire.ChunkOverhead]byte
	buf := wire.AppendChunk(arr[:0], chunkEOF, nil, wire.GenCurrent)
	_, err := w.Write(buf)
	return err
}

// ChunkDecoder owns the payload scratch a chunk is read into. One
// decoder reused across chunks keeps steady-state decode allocations
// down to the frames themselves: each chunk's frames share a single
// backing array sliced per frame, and they OWN that memory — nothing
// handed out aliases the decoder's scratch, so the ingest ring and
// Problem.AppendLocations may retain frames indefinitely.
//
// The zero value is ready to use. Not safe for concurrent use; the
// package-level ReadChunk pools decoders.
type ChunkDecoder struct {
	scratch []byte
}

// ReadChunk reads one framed chunk for a stream with the given window
// size. It returns the decoded frames for an 'F' chunk, eof == true
// for an 'E' chunk, and io.EOF when r is exhausted before a chunk
// starts. CRC or length mismatches return ErrChunkCorrupt; implausible
// frame counts return ErrHeaderBounds — both before the payload is
// interpreted. Either checksum generation (Castagnoli or legacy IEEE)
// is accepted per chunk.
func (d *ChunkDecoder) ReadChunk(r io.Reader, windowN int) (frames []Frame, eof bool, err error) {
	if windowN <= 0 || windowN > maxWindowN {
		return nil, false, fmt.Errorf("%w: window %d", ErrHeaderBounds, windowN)
	}
	// No buffering here: every read is exact-size, so ReadChunk never
	// consumes bytes past its own chunk — callers interleave calls on a
	// shared reader (ReadStream) or hand over an HTTP body.
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, false, io.EOF
		}
		return nil, false, fmt.Errorf("dataio: reading chunk kind: %w", err)
	}
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, false, fmt.Errorf("dataio: reading chunk length: %w", err)
	}
	length := wire.Int64(lenBuf[:])
	switch kind[0] {
	case chunkEOF:
		if length != 0 {
			return nil, false, fmt.Errorf("%w: EOF chunk with %d payload bytes", ErrChunkCorrupt, length)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return nil, false, fmt.Errorf("dataio: reading chunk crc: %w", err)
		}
		// Both generations checksum the empty payload to 0.
		if sum := wire.Uint32(crcBuf[:]); sum != 0 {
			return nil, false, fmt.Errorf("%w: EOF chunk crc %08x", ErrChunkCorrupt, sum)
		}
		return nil, true, nil
	case chunkFrames:
		fb := int64(frameBytes(windowN))
		// The declared length must be exactly a count field plus a
		// whole number of frames, below the frame cap.
		if length < 8+fb || (length-8)%fb != 0 {
			return nil, false, fmt.Errorf("%w: frame chunk length %d not 8+k*%d", ErrChunkCorrupt, length, fb)
		}
		if n := (length - 8) / fb; n > maxChunkFrames {
			return nil, false, fmt.Errorf("%w: %d frames in one chunk (max %d)", ErrHeaderBounds, n, maxChunkFrames)
		}
		// Never trust the declared length for the allocation:
		// wire.ReadCapped grows in bounded increments as bytes ACTUALLY
		// arrive — a 17-byte request declaring a terabyte chunk fails at
		// EOF having allocated almost nothing.
		payload, err := wire.ReadCapped(r, d.scratch, length)
		if err != nil {
			return nil, false, fmt.Errorf("dataio: reading chunk payload: %w", err)
		}
		d.scratch = payload
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return nil, false, fmt.Errorf("dataio: reading chunk crc: %w", err)
		}
		sum := wire.Uint32(crcBuf[:])
		if want, ok := wire.Verify(sum, payload); !ok {
			return nil, false, fmt.Errorf("%w: crc %08x != %08x", ErrChunkCorrupt, sum, want)
		}
		return decodeFramePayload(payload, windowN)
	default:
		return nil, false, fmt.Errorf("%w: unknown chunk kind %q", ErrChunkCorrupt, kind[0])
	}
}

var chunkDecoders = sync.Pool{New: func() any { return new(ChunkDecoder) }}

// ReadChunk reads one framed chunk using a pooled decoder; see
// ChunkDecoder.ReadChunk. Callers on a hot path should hold their own
// ChunkDecoder instead.
func ReadChunk(r io.Reader, windowN int) (frames []Frame, eof bool, err error) {
	d := chunkDecoders.Get().(*ChunkDecoder)
	defer chunkDecoders.Put(d)
	return d.ReadChunk(r, windowN)
}

// DecodeChunk is the zero-copy sibling of ReadChunk for callers that
// already hold the encoded bytes in memory (a spool file read whole, a
// batch buffer): the chunk at the front of buf is validated and
// decoded in place — no intermediate payload copy — and n reports the
// bytes consumed so callers can walk a concatenation. Validation, caps
// and dual-generation CRC acceptance match ReadChunk exactly; an empty
// buf returns io.EOF and a buffer ending mid-chunk returns
// io.ErrUnexpectedEOF, mirroring the reader's truncation taxonomy.
func DecodeChunk(buf []byte, windowN int) (frames []Frame, eof bool, n int, err error) {
	if windowN <= 0 || windowN > maxWindowN {
		return nil, false, 0, fmt.Errorf("%w: window %d", ErrHeaderBounds, windowN)
	}
	if len(buf) == 0 {
		return nil, false, 0, io.EOF
	}
	if len(buf) < 1+8 {
		return nil, false, 0, fmt.Errorf("dataio: reading chunk length: %w", io.ErrUnexpectedEOF)
	}
	kind, length := buf[0], wire.Int64(buf[1:])
	switch kind {
	case chunkEOF:
		if length != 0 {
			return nil, false, 0, fmt.Errorf("%w: EOF chunk with %d payload bytes", ErrChunkCorrupt, length)
		}
		if len(buf) < wire.ChunkOverhead {
			return nil, false, 0, fmt.Errorf("dataio: reading chunk crc: %w", io.ErrUnexpectedEOF)
		}
		if sum := wire.Uint32(buf[9:]); sum != 0 {
			return nil, false, 0, fmt.Errorf("%w: EOF chunk crc %08x", ErrChunkCorrupt, sum)
		}
		return nil, true, wire.ChunkOverhead, nil
	case chunkFrames:
		fb := int64(frameBytes(windowN))
		if length < 8+fb || (length-8)%fb != 0 {
			return nil, false, 0, fmt.Errorf("%w: frame chunk length %d not 8+k*%d", ErrChunkCorrupt, length, fb)
		}
		if c := (length - 8) / fb; c > maxChunkFrames {
			return nil, false, 0, fmt.Errorf("%w: %d frames in one chunk (max %d)", ErrHeaderBounds, c, maxChunkFrames)
		}
		total := int64(wire.ChunkOverhead) + length
		if int64(len(buf)) < total {
			return nil, false, 0, fmt.Errorf("dataio: reading chunk payload: %w", io.ErrUnexpectedEOF)
		}
		payload := buf[9 : 9+length]
		sum := wire.Uint32(buf[9+length:])
		if want, ok := wire.Verify(sum, payload); !ok {
			return nil, false, 0, fmt.Errorf("%w: crc %08x != %08x", ErrChunkCorrupt, sum, want)
		}
		frames, eof, err = decodeFramePayload(payload, windowN)
		return frames, eof, int(total), err
	default:
		return nil, false, 0, fmt.Errorf("%w: unknown chunk kind %q", ErrChunkCorrupt, kind)
	}
}

// decodeFramePayload slices frames out of a verified 'F' payload. All
// frames of the chunk share one backing array (three allocations per
// chunk: frames, grids, samples), which they own — the payload buffer
// itself is the decoder's and is reused for the next chunk.
func decodeFramePayload(payload []byte, windowN int) ([]Frame, bool, error) {
	fb := frameBytes(windowN)
	count := wire.Int64(payload)
	if want := int64(len(payload)-8) / int64(fb); count != want {
		return nil, false, fmt.Errorf("%w: chunk declares %d frames, payload holds %d", ErrChunkCorrupt, count, want)
	}
	nn := windowN * windowN
	frames := make([]Frame, count)
	grids := make([]grid.Float2D, count)
	backing := make([]float64, int(count)*nn)
	bounds := grid.RectWH(0, 0, windowN, windowN)
	off := 8
	for i := range frames {
		data := backing[i*nn : (i+1)*nn : (i+1)*nn]
		wire.Float64s(data, payload[off+32:])
		grids[i] = grid.Float2D{Bounds: bounds, Data: data}
		frames[i] = Frame{
			Loc: scan.Location{
				Index:  int(wire.Int64(payload[off:])),
				X:      wire.Float64(payload[off+8:]),
				Y:      wire.Float64(payload[off+16:]),
				Radius: wire.Float64(payload[off+24:]),
			},
			Meas: &grids[i],
		}
		off += fb
	}
	return frames, false, nil
}

// FramesFromProblem converts a batch dataset's locations and
// measurements into frames in acquisition order — the replay source
// for ptychofeed and the streaming tests.
func FramesFromProblem(prob *solver.Problem) []Frame {
	frames := make([]Frame, prob.Pattern.N())
	for i, l := range prob.Pattern.Locations {
		frames[i] = Frame{Loc: l, Meas: prob.Meas[i]}
	}
	return frames
}

// WriteStream serializes a complete dataset as a PTYCHSv2 stream:
// header, frames in chunks of chunkSize, then the EOF marker. The
// output replays into a problem identical to prob.
func WriteStream(w io.Writer, prob *solver.Problem, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 64
	}
	if err := prob.Validate(); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	if err := WriteStreamHeader(w, HeaderFromProblem(prob)); err != nil {
		return err
	}
	frames := FramesFromProblem(prob)
	enc := chunkEncoders.Get().(*ChunkEncoder)
	defer chunkEncoders.Put(enc)
	for lo := 0; lo < len(frames); lo += chunkSize {
		hi := min(lo+chunkSize, len(frames))
		if err := enc.WriteFrameChunk(w, prob.WindowN, frames[lo:hi]); err != nil {
			return err
		}
	}
	return WriteEOFChunk(w)
}

// ReadStream replays a complete PTYCHSv1/v2 stream from r into a
// canonical problem: header, every frame chunk in order, until the EOF
// marker (or the end of r, for a stream whose acquisition was cut
// short). This is the bridge back to the batch world — the returned
// problem serializes to PTYCHOv1 with Write.
func ReadStream(r io.Reader) (*solver.Problem, error) {
	br := bufio.NewReader(r)
	h, err := readStreamHeader(br)
	if err != nil {
		return nil, err
	}
	prob := h.NewProblem()
	dec := chunkDecoders.Get().(*ChunkDecoder)
	defer chunkDecoders.Put(dec)
	for {
		frames, eof, err := dec.ReadChunk(br, h.WindowN)
		if errors.Is(err, io.EOF) {
			break // truncated stream: keep what arrived
		}
		if err != nil {
			return nil, err
		}
		if eof {
			break
		}
		locs := make([]scan.Location, len(frames))
		meas := make([]*grid.Float2D, len(frames))
		for i, f := range frames {
			locs[i], meas[i] = f.Loc, f.Meas
		}
		if err := prob.AppendLocations(locs, meas); err != nil {
			return nil, fmt.Errorf("dataio: replaying stream: %w", err)
		}
	}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("dataio: replayed problem invalid: %w", err)
	}
	return prob, nil
}

// ReadStreamFile replays a PTYCHSv1/v2 stream from the named file.
func ReadStreamFile(path string) (*solver.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return ReadStream(f)
}
