package dataio

import (
	"bytes"
	"testing"

	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/wire/wiretest"
)

// FuzzRead hammers the dataset decoder with arbitrary bytes: it must
// never panic and never return a problem that fails validation. Seeds
// include a valid file, its prefix truncations, and bit flips.
func FuzzRead(f *testing.F) {
	pat, err := scan.Raster(scan.RasterConfig{Cols: 2, Rows: 2, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		f.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 8, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, prob); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:16])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte("PTYCHOv1"))
	f.Add([]byte{})
	// Oversized-header seeds: each header field pushed past the
	// ErrHeaderBounds caps (and negative), with the full valid payload
	// still attached — the reader must reject on the header alone.
	f.Add(patchInt64(valid, 8, 1<<40))  // windowN huge
	f.Add(patchInt64(valid, 8, -1))     // windowN negative
	f.Add(patchInt64(valid, 16, 1<<40)) // slices huge
	f.Add(patchInt64(valid, 24, 1<<40)) // imageW huge
	f.Add(patchInt64(valid, 32, -7))    // imageH negative
	f.Add(patchInt64(valid, 40, 1<<40)) // numLocations huge

	f.Fuzz(func(t *testing.T, data []byte) {
		prob, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := prob.Validate(); verr != nil {
			t.Fatalf("Read accepted a problem that fails validation: %v", verr)
		}
	})
}

// FuzzReadObject does the same for the checkpoint decoder. The seed
// corpus covers the OBJCKv1 magic and truncation taxonomy: bare magic,
// magic with a corrupted byte, cuts inside the magic, inside each header
// field, at the header/payload boundary, and mid-slice.
func FuzzReadObject(f *testing.F) {
	obj := phantom.RandomObject(8, 8, 2, 2)
	var buf bytes.Buffer
	if err := WriteObject(&buf, obj.Slices); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:20])
	f.Add([]byte("OBJCKv1\x00"))
	f.Add([]byte{})
	// Magic cases: truncated mid-magic, wrong version byte, wrong
	// terminator, dataset magic in an object file.
	f.Add(valid[:3])
	f.Add(valid[:7])
	wrongVer := append([]byte(nil), valid...)
	wrongVer[6] = '2' // "OBJCKv2"
	f.Add(wrongVer)
	wrongTerm := append([]byte(nil), valid...)
	wrongTerm[7] = 0xFF
	f.Add(wrongTerm)
	f.Add(append([]byte("PTYCHOv1"), valid[8:]...))
	// Header truncations: cut inside each of the 5 int64 fields.
	for i := 0; i < 5; i++ {
		f.Add(valid[: 8+8*i+4 : 8+8*i+4])
	}
	// Header lies: slice count far beyond the payload, zero/negative
	// dimensions, and fields past the ErrHeaderBounds caps.
	hugeSlices := append([]byte(nil), valid...)
	hugeSlices[8] = 0xFF // slices int64 LSB
	f.Add(hugeSlices)
	f.Add(patchInt64(valid, 8, 1<<40))  // slices past the cap
	f.Add(patchInt64(valid, 32, 1<<40)) // w past the cap
	f.Add(patchInt64(valid, 40, -2))    // h negative
	zeroW := append([]byte(nil), valid...)
	for i := 0; i < 8; i++ {
		zeroW[8+3*8+i] = 0 // w field
	}
	f.Add(zeroW)
	// Payload truncations: exactly at the header end, mid first slice,
	// between slices, and one byte short of complete.
	f.Add(valid[:8+5*8])
	f.Add(valid[:8+5*8+7])
	f.Add(valid[:8+5*8+2*8*8*8]) // after slice 0 of 2
	f.Add(valid[:len(valid)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		slices, err := ReadObject(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, s := range slices {
			if s == nil || len(s.Data) != s.Bounds.Area() {
				t.Fatal("decoder returned inconsistent slice")
			}
		}
	})
}

// FuzzReadStream hammers the PTYCHSv1 replay path: header decoding,
// chunk framing, CRC verification, and the append loop must never
// panic and never return a problem that fails validation. Seeds cover
// a valid stream, truncations at every structural boundary, CRC and
// kind corruption, and oversized headers.
func FuzzReadStream(f *testing.F) {
	pat, err := scan.Raster(scan.RasterConfig{Cols: 2, Rows: 2, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		f.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 8, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, prob, 2); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	headerEnd := 8 + 8*8 + 2*8*8*8 // magic + header + probe (single slice: no prop)

	f.Add(valid)
	f.Add([]byte("PTYCHSv1"))
	f.Add([]byte{})
	f.Add(valid[:headerEnd])            // header only, no chunks
	f.Add(valid[:headerEnd+1])          // cut after a chunk kind byte
	f.Add(valid[:headerEnd+5])          // cut inside a chunk length
	f.Add(valid[:len(valid)-3])         // cut inside the EOF marker
	f.Add(patchInt64(valid, 8, 1<<40))  // windowN past the cap
	f.Add(patchInt64(valid, 16, -1))    // slices negative
	f.Add(patchInt64(valid, 24, 1<<40)) // imageW past the cap
	crcFlip := append([]byte(nil), valid...)
	crcFlip[headerEnd+30] ^= 0x01 // payload bit: CRC must catch it
	f.Add(crcFlip)
	kindFlip := append([]byte(nil), valid...)
	kindFlip[headerEnd] = 'Z'
	f.Add(kindFlip)
	// The shared framing-attack corpus, anchored on the first chunk's
	// length field — the same mutations the transport and WAL fuzzers
	// rehearse, so a defense added in one decoder is tested in all.
	for _, m := range wiretest.Mutations(valid, headerEnd+1) {
		f.Add(m)
	}
	// A legacy IEEE-framed stream must replay; with a flipped payload
	// bit it must be rejected by the old-generation CRC, not accepted.
	legacy := legacyStreamBytes(f, prob, 2)
	f.Add(legacy)
	for _, m := range wiretest.Mutations(legacy, headerEnd+1) {
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		prob, err := ReadStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := prob.Validate(); verr != nil {
			t.Fatalf("ReadStream accepted a problem that fails validation: %v", verr)
		}
	})
}
