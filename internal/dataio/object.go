package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"ptychopath/internal/grid"
)

// Object checkpoints (OBJCKv1) persist a multi-slice complex object —
// a reconstruction in progress or a final result — so long runs can be
// resumed and results archived without recomputation.
//
// Layout: magic "OBJCKv1\x00", then 5 int64 (slices, x0, y0, w, h),
// then slices * w * h * 2 float64 (re, im interleaved, row-major).
// Because the bounds travel with the data, the format also carries
// grid-worker result tiles (transport.RankResult) — exact rectangles
// reassemble on the coordinator. Full spec: docs/FORMATS.md.

var objMagic = [8]byte{'O', 'B', 'J', 'C', 'K', 'v', '1', 0}

// Object-checkpoint resource caps (see ErrHeaderBounds in dataio.go).
const (
	maxObjectSlices = 1 << 16
	maxObjectDim    = 1 << 16
)

// ErrSliceMismatch is returned by WriteObject when the slices do not
// form a consistent stack: empty input, bounds that differ between
// slices, or a data buffer whose length disagrees with its bounds.
// Serializing such a stack would silently produce a checkpoint that
// cannot resume the run it claims to hold.
var ErrSliceMismatch = errors.New("dataio: inconsistent object slices")

// WriteObject serializes object slices (all sharing bounds) to w.
func WriteObject(w io.Writer, slices []*grid.Complex2D) error {
	if len(slices) == 0 {
		return fmt.Errorf("%w: no slices to write", ErrSliceMismatch)
	}
	bounds := slices[0].Bounds
	for i, s := range slices {
		if s == nil {
			return fmt.Errorf("%w: slice %d is nil", ErrSliceMismatch, i)
		}
		if s.Bounds != bounds {
			return fmt.Errorf("%w: slice %d bounds %v != %v", ErrSliceMismatch, i, s.Bounds, bounds)
		}
		if len(s.Data) != bounds.Area() {
			return fmt.Errorf("%w: slice %d has %d values for bounds %v (want %d)",
				ErrSliceMismatch, i, len(s.Data), bounds, bounds.Area())
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(objMagic[:]); err != nil {
		return err
	}
	header := []int64{
		int64(len(slices)),
		int64(bounds.X0), int64(bounds.Y0),
		int64(bounds.W()), int64(bounds.H()),
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	buf := make([]float64, 2*bounds.Area())
	for _, s := range slices {
		for i, v := range s.Data {
			buf[2*i] = real(v)
			buf[2*i+1] = imag(v)
		}
		if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadObject deserializes object slices from r.
func ReadObject(r io.Reader) ([]*grid.Complex2D, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataio: reading object magic: %w", err)
	}
	if m != objMagic {
		return nil, fmt.Errorf("dataio: bad object magic %q", m)
	}
	header := make([]int64, 5)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("dataio: reading object header: %w", err)
	}
	n := int(header[0])
	w, h := int(header[3]), int(header[4])
	// Bounds before any payload-sized allocation (see ErrHeaderBounds).
	if n <= 0 || n > maxObjectSlices {
		return nil, fmt.Errorf("%w: %d object slices (want 1..%d)", ErrHeaderBounds, n, maxObjectSlices)
	}
	if w <= 0 || h <= 0 || w > maxObjectDim || h > maxObjectDim {
		return nil, fmt.Errorf("%w: object %dx%d (want 1..%d per edge)", ErrHeaderBounds, w, h, maxObjectDim)
	}
	bounds := grid.RectWH(int(header[1]), int(header[2]), w, h)
	out := make([]*grid.Complex2D, n)
	buf := make([]float64, 2*w*h)
	for s := 0; s < n; s++ {
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("dataio: reading object slice %d: %w", s, err)
		}
		a := grid.NewComplex2D(bounds)
		for i := range a.Data {
			a.Data[i] = complex(buf[2*i], buf[2*i+1])
		}
		out[s] = a
	}
	return out, nil
}

// WriteObjectFile serializes object slices to the named file.
func WriteObjectFile(path string, slices []*grid.Complex2D) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return WriteObject(f, slices)
}

// WriteObjectFileAtomic serializes object slices to the named file via
// a temporary sibling and rename, so concurrent readers (and crashes
// mid-write) never observe a torn checkpoint. The temporary file is
// removed on error.
func WriteObjectFileAtomic(path string, slices []*grid.Complex2D) error {
	tmp := path + ".tmp"
	if err := WriteObjectFile(tmp, slices); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataio: %w", err)
	}
	return nil
}

// ReadObjectFile deserializes object slices from the named file.
func ReadObjectFile(path string) ([]*grid.Complex2D, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return ReadObject(f)
}
