package dataio

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/wire"
	"ptychopath/internal/wire/wiretest"
)

// conformanceProblem is a hand-built deterministic dataset — every
// value is chosen by hand (exact binary fractions, fixed locations) so
// the golden byte vectors depend only on the wire formats, never on
// the physics or RNG code paths that solver.Simulate exercises.
func conformanceProblem() *solver.Problem {
	const n = 4
	probe := grid.NewComplex2DSize(n, n)
	for i := range probe.Data {
		probe.Data[i] = complex(float64(i)/16, -float64(i)/32)
	}
	pat := &scan.Pattern{ImageW: 32, ImageH: 32, StepPix: 5, RadiusPix: 6}
	var meas []*grid.Float2D
	for k := 0; k < 3; k++ {
		pat.Locations = append(pat.Locations, scan.Location{
			Index: k, X: float64(8 + 5*k), Y: 9, Radius: 6,
		})
		m := grid.NewFloat2DSize(n, n)
		for i := range m.Data {
			m.Data[i] = float64(k*16+i) / 8
		}
		meas = append(meas, m)
	}
	return &solver.Problem{Pattern: pat, Meas: meas, Probe: probe, WindowN: n, Slices: 1}
}

// legacyStreamBytes encodes prob the way the pre-Castagnoli writer
// did: PTYCHSv1 magic and IEEE chunk CRCs. Built independently of the
// production encoder so the differential test below actually compares
// two implementations rather than one with itself.
func legacyStreamBytes(t testing.TB, prob *solver.Problem, chunkSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteStreamHeader(&buf, HeaderFromProblem(prob)); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	copy(out[:8], streamMagicV1[:])
	frames := FramesFromProblem(prob)
	for lo := 0; lo < len(frames); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(frames) {
			hi = len(frames)
		}
		var p []byte
		p = wire.AppendInt64(p, int64(hi-lo))
		for _, fr := range frames[lo:hi] {
			p = wire.AppendInt64(p, int64(fr.Loc.Index))
			p = wire.AppendFloat64(p, fr.Loc.X)
			p = wire.AppendFloat64(p, fr.Loc.Y)
			p = wire.AppendFloat64(p, fr.Loc.Radius)
			p = wire.AppendFloat64s(p, fr.Meas.Data)
		}
		out = wire.AppendChunk(out, chunkFrames, p, wire.GenIEEE)
	}
	return wire.AppendChunk(out, chunkEOF, nil, wire.GenIEEE)
}

// TestGoldenDataset pins the PTYCHOv1 batch format to committed bytes
// and proves decode→re-encode is bit-identical.
func TestGoldenDataset(t *testing.T) {
	prob := conformanceProblem()
	var buf bytes.Buffer
	if err := Write(&buf, prob); err != nil {
		t.Fatal(err)
	}
	wiretest.Golden(t, "ptycho_v1.golden", buf.Bytes())

	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := Write(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("PTYCHOv1 decode→re-encode is not bit-identical")
	}
}

// TestGoldenObject pins the OBJCKv1 checkpoint format.
func TestGoldenObject(t *testing.T) {
	slices := make([]*grid.Complex2D, 2)
	for s := range slices {
		c := grid.NewComplex2DSize(6, 6)
		for i := range c.Data {
			c.Data[i] = complex(float64(s*64+i)/8, float64(i)/4)
		}
		slices[s] = c
	}
	var buf bytes.Buffer
	if err := WriteObject(&buf, slices); err != nil {
		t.Fatal(err)
	}
	wiretest.Golden(t, "objck_v1.golden", buf.Bytes())

	got, err := ReadObject(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteObject(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("OBJCKv1 decode→re-encode is not bit-identical")
	}
}

// TestGoldenStream pins the current PTYCHSv2 (Castagnoli) stream
// encoding and proves replay→re-encode is bit-identical.
func TestGoldenStream(t *testing.T) {
	prob := conformanceProblem()
	var buf bytes.Buffer
	if err := WriteStream(&buf, prob, 2); err != nil {
		t.Fatal(err)
	}
	wiretest.Golden(t, "ptychs_v2.golden", buf.Bytes())

	got, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteStream(&again, got, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("PTYCHSv2 replay→re-encode is not bit-identical")
	}
}

// TestGoldenStreamLegacy pins the old IEEE-framed PTYCHSv1 encoding
// and runs the differential check: the current reader must replay the
// legacy bytes to the exact state the current writer would produce —
// so upgrading the checksum generation changed nothing but the frame.
func TestGoldenStreamLegacy(t *testing.T) {
	prob := conformanceProblem()
	legacy := legacyStreamBytes(t, prob, 2)
	wiretest.Golden(t, "ptychs_v1_ieee.golden", legacy)

	var current bytes.Buffer
	if err := WriteStream(&current, prob, 2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(legacy, current.Bytes()) {
		t.Fatal("legacy and current streams should differ (magic and CRCs)")
	}

	replayed, err := ReadStream(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("current reader rejected legacy PTYCHSv1 stream: %v", err)
	}
	var reenc bytes.Buffer
	if err := WriteStream(&reenc, replayed, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc.Bytes(), current.Bytes()) {
		t.Fatal("legacy replay diverges from a current-generation encode of the same problem")
	}
}

// TestDecodeChunkMatchesReadChunk pins the zero-copy decoder to the
// reader: same frames from the same bytes, same consumed count, and
// the same truncation taxonomy (io.EOF when empty, ErrUnexpectedEOF
// when torn, ErrChunkCorrupt on a flipped CRC).
func TestDecodeChunkMatchesReadChunk(t *testing.T) {
	prob := conformanceProblem()
	frames := FramesFromProblem(prob)
	n := prob.WindowN
	var buf bytes.Buffer
	if err := WriteFrameChunk(&buf, n, frames); err != nil {
		t.Fatal(err)
	}
	if err := WriteEOFChunk(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	viaReader, eof, err := ReadChunk(bytes.NewReader(raw), n)
	if err != nil || eof {
		t.Fatalf("ReadChunk: eof %v, err %v", eof, err)
	}
	direct, eof, consumed, err := DecodeChunk(raw, n)
	if err != nil || eof {
		t.Fatalf("DecodeChunk: eof %v, err %v", eof, err)
	}
	if len(direct) != len(viaReader) {
		t.Fatalf("DecodeChunk returned %d frames, ReadChunk %d", len(direct), len(viaReader))
	}
	for i := range direct {
		if direct[i].Loc != viaReader[i].Loc || !bytes.Equal(
			wire.AppendFloat64s(nil, direct[i].Meas.Data),
			wire.AppendFloat64s(nil, viaReader[i].Meas.Data)) {
			t.Fatalf("frame %d differs between decoders", i)
		}
	}
	_, eof, tail, err := DecodeChunk(raw[consumed:], n)
	if err != nil || !eof {
		t.Fatalf("EOF chunk: eof %v, err %v", eof, err)
	}
	if consumed+tail != len(raw) {
		t.Fatalf("consumed %d+%d of %d bytes", consumed, tail, len(raw))
	}

	if _, _, _, err := DecodeChunk(nil, n); err != io.EOF {
		t.Fatalf("empty buffer: %v, want io.EOF", err)
	}
	if _, _, _, err := DecodeChunk(raw[:consumed/2], n); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn buffer: %v, want ErrUnexpectedEOF", err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[consumed-6] ^= 0x01 // payload byte under the chunk CRC
	if _, _, _, err := DecodeChunk(flipped, n); !errors.Is(err, ErrChunkCorrupt) {
		t.Fatalf("flipped payload: %v, want ErrChunkCorrupt", err)
	}
}

// TestChunkCodecAllocs is the allocation-budget guard for the stream
// hot path: a warm ChunkEncoder writes with zero allocations, and a
// warm ChunkDecoder spends at most the three slices the decoded frames
// own (budget 8 leaves slack for toolchain drift, per the BENCH gate).
func TestChunkCodecAllocs(t *testing.T) {
	prob := conformanceProblem()
	frames := FramesFromProblem(prob)
	windowN := prob.WindowN

	enc := new(ChunkEncoder)
	if err := enc.WriteFrameChunk(io.Discard, windowN, frames); err != nil {
		t.Fatal(err)
	}
	encAllocs := testing.AllocsPerRun(100, func() {
		if err := enc.WriteFrameChunk(io.Discard, windowN, frames); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > 0 {
		t.Errorf("warm ChunkEncoder.WriteFrameChunk: %.0f allocs/op, budget 0", encAllocs)
	}

	var chunk bytes.Buffer
	if err := enc.WriteFrameChunk(&chunk, windowN, frames); err != nil {
		t.Fatal(err)
	}
	raw := chunk.Bytes()
	dec := new(ChunkDecoder)
	r := bytes.NewReader(raw)
	if _, _, err := dec.ReadChunk(r, windowN); err != nil {
		t.Fatal(err)
	}
	decAllocs := testing.AllocsPerRun(100, func() {
		r.Reset(raw)
		if _, _, err := dec.ReadChunk(r, windowN); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > 8 {
		t.Errorf("warm ChunkDecoder.ReadChunk: %.0f allocs/op, budget 8", decAllocs)
	}
}
