package dataio

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"ptychopath/internal/grid"
)

func randObject(rng *rand.Rand, bounds grid.Rect, n int) []*grid.Complex2D {
	out := make([]*grid.Complex2D, n)
	for s := range out {
		a := grid.NewComplex2D(bounds)
		for i := range a.Data {
			a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		out[s] = a
	}
	return out
}

func TestObjectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Non-origin bounds exercise the offset fields (tile checkpoints).
	bounds := grid.NewRect(10, -5, 42, 19)
	obj := randObject(rng, bounds, 3)
	var buf bytes.Buffer
	if err := WriteObject(&buf, obj); err != nil {
		t.Fatal(err)
	}
	got, err := ReadObject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("slice count %d", len(got))
	}
	for s := range obj {
		if got[s].Bounds != bounds {
			t.Fatalf("slice %d bounds %v, want %v", s, got[s].Bounds, bounds)
		}
		if got[s].MaxDiff(obj[s]) > 0 {
			t.Fatalf("slice %d content mismatch", s)
		}
	}
}

func TestObjectFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	obj := randObject(rng, grid.RectWH(0, 0, 16, 12), 2)
	path := filepath.Join(t.TempDir(), "ck.obj")
	if err := WriteObjectFile(path, obj); err != nil {
		t.Fatal(err)
	}
	got, err := ReadObjectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].MaxDiff(obj[1]) > 0 {
		t.Fatal("file round trip mismatch")
	}
}

func TestWriteObjectRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteObject(&buf, nil); !errors.Is(err, ErrSliceMismatch) {
		t.Fatalf("empty object: got %v, want ErrSliceMismatch", err)
	}
}

func TestWriteObjectRejectsMismatchedBounds(t *testing.T) {
	obj := []*grid.Complex2D{
		grid.NewComplex2DSize(4, 4),
		grid.NewComplex2DSize(5, 4),
	}
	var buf bytes.Buffer
	if err := WriteObject(&buf, obj); !errors.Is(err, ErrSliceMismatch) {
		t.Fatalf("mismatched bounds: got %v, want ErrSliceMismatch", err)
	}
	if buf.Len() != 0 {
		t.Errorf("rejected write still emitted %d bytes", buf.Len())
	}
}

func TestWriteObjectRejectsInconsistentData(t *testing.T) {
	// A slice whose data buffer disagrees with its bounds must not
	// serialize: the header would promise w*h values per slice and the
	// payload would deliver something else.
	good := grid.NewComplex2DSize(4, 4)
	bad := grid.NewComplex2DSize(4, 4)
	bad.Data = bad.Data[:10]
	var buf bytes.Buffer
	if err := WriteObject(&buf, []*grid.Complex2D{good, bad}); !errors.Is(err, ErrSliceMismatch) {
		t.Fatalf("short data buffer: got %v, want ErrSliceMismatch", err)
	}
	if err := WriteObject(&buf, []*grid.Complex2D{good, nil}); !errors.Is(err, ErrSliceMismatch) {
		t.Fatalf("nil slice: got %v, want ErrSliceMismatch", err)
	}
}

func TestReadObjectRejectsGarbage(t *testing.T) {
	if _, err := ReadObject(strings.NewReader("not an object checkpoint at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Dataset magic is not object magic.
	if _, err := ReadObject(strings.NewReader("PTYCHOv1xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("dataset file accepted as object")
	}
}

func TestReadObjectRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	obj := randObject(rng, grid.RectWH(0, 0, 8, 8), 2)
	var buf bytes.Buffer
	if err := WriteObject(&buf, obj); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, 20, len(data) / 2, len(data) - 1} {
		if _, err := ReadObject(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
