// Package dataio defines the binary on-disk dataset format used by the
// command-line tools: a self-describing container holding the scan
// pattern, probe wavefunction, propagator, and per-location diffraction
// amplitudes. The format is little-endian, versioned, and written with
// nothing but encoding/binary.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "PTYCHOv1"
//	header  9 x int64: windowN, slices, imageW, imageH, numLocations,
//	                   hasProp (0/1), stepPix*1e6, radiusPix*1e6, reserved
//	probe   2*windowN^2 float64 (re, im interleaved)
//	prop    2*windowN^2 float64 (present when hasProp == 1)
//	locs    numLocations x (int64 index, float64 x, y, radius)
//	meas    numLocations x windowN^2 float64 amplitudes
package dataio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"ptychopath/internal/grid"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

var magic = [8]byte{'P', 'T', 'Y', 'C', 'H', 'O', 'v', '1'}

// Write serializes a problem to w.
func Write(w io.Writer, prob *solver.Problem) error {
	if err := prob.Validate(); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hasProp := int64(0)
	if prob.Prop != nil {
		hasProp = 1
	}
	header := []int64{
		int64(prob.WindowN), int64(prob.Slices),
		int64(prob.Pattern.ImageW), int64(prob.Pattern.ImageH),
		int64(prob.Pattern.N()), hasProp,
		int64(math.Round(prob.Pattern.StepPix * 1e6)),
		int64(math.Round(prob.Pattern.RadiusPix * 1e6)),
		0,
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := writeComplex(bw, prob.Probe); err != nil {
		return err
	}
	if prob.Prop != nil {
		if err := writeComplex(bw, prob.Prop); err != nil {
			return err
		}
	}
	for _, l := range prob.Pattern.Locations {
		if err := binary.Write(bw, binary.LittleEndian, int64(l.Index)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, []float64{l.X, l.Y, l.Radius}); err != nil {
			return err
		}
	}
	for _, m := range prob.Meas {
		if err := binary.Write(bw, binary.LittleEndian, m.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeComplex(w io.Writer, a *grid.Complex2D) error {
	buf := make([]float64, 2*len(a.Data))
	for i, v := range a.Data {
		buf[2*i] = real(v)
		buf[2*i+1] = imag(v)
	}
	return binary.Write(w, binary.LittleEndian, buf)
}

func readComplex(r io.Reader, n int) (*grid.Complex2D, error) {
	buf := make([]float64, 2*n*n)
	if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
		return nil, err
	}
	a := grid.NewComplex2DSize(n, n)
	for i := range a.Data {
		a.Data[i] = complex(buf[2*i], buf[2*i+1])
	}
	return a, nil
}

// Read deserializes a problem from r.
func Read(r io.Reader) (*solver.Problem, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataio: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dataio: bad magic %q (not a PTYCHOv1 file)", m)
	}
	header := make([]int64, 9)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("dataio: reading header: %w", err)
	}
	windowN := int(header[0])
	slices := int(header[1])
	imageW, imageH := int(header[2]), int(header[3])
	numLoc := int(header[4])
	hasProp := header[5] == 1
	// Resource caps: reject headers that would commit the decoder to
	// multi-gigabyte allocations before any payload is verified.
	if windowN <= 0 || windowN > 4096 || numLoc < 0 || numLoc > 1<<20 ||
		slices <= 0 || slices > 1<<14 {
		return nil, fmt.Errorf("dataio: implausible header: window %d, %d locations, %d slices",
			windowN, numLoc, slices)
	}
	probe, err := readComplex(br, windowN)
	if err != nil {
		return nil, fmt.Errorf("dataio: reading probe: %w", err)
	}
	var prop *grid.Complex2D
	if hasProp {
		if prop, err = readComplex(br, windowN); err != nil {
			return nil, fmt.Errorf("dataio: reading propagator: %w", err)
		}
	}
	pat := &scan.Pattern{
		ImageW: imageW, ImageH: imageH,
		StepPix:   float64(header[6]) / 1e6,
		RadiusPix: float64(header[7]) / 1e6,
	}
	pat.Locations = make([]scan.Location, numLoc)
	for i := range pat.Locations {
		var idx int64
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return nil, fmt.Errorf("dataio: reading location %d: %w", i, err)
		}
		coords := make([]float64, 3)
		if err := binary.Read(br, binary.LittleEndian, coords); err != nil {
			return nil, fmt.Errorf("dataio: reading location %d: %w", i, err)
		}
		pat.Locations[i] = scan.Location{
			Index: int(idx), X: coords[0], Y: coords[1], Radius: coords[2],
		}
	}
	meas := make([]*grid.Float2D, numLoc)
	for i := range meas {
		a := grid.NewFloat2DSize(windowN, windowN)
		if err := binary.Read(br, binary.LittleEndian, a.Data); err != nil {
			return nil, fmt.Errorf("dataio: reading measurement %d: %w", i, err)
		}
		meas[i] = a
	}
	prob := &solver.Problem{
		Pattern: pat, Meas: meas, Probe: probe, Prop: prop,
		WindowN: windowN, Slices: slices,
	}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("dataio: loaded problem invalid: %w", err)
	}
	return prob, nil
}

// WriteFile serializes a problem to the named file.
func WriteFile(path string, prob *solver.Problem) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return Write(f, prob)
}

// ReadFile deserializes a problem from the named file.
func ReadFile(path string) (*solver.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return Read(f)
}
