// Package dataio defines the binary on-disk dataset format used by the
// command-line tools: a self-describing container holding the scan
// pattern, probe wavefunction, propagator, and per-location diffraction
// amplitudes. The format is little-endian, versioned, and written with
// nothing but encoding/binary.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "PTYCHOv1"
//	header  9 x int64: windowN, slices, imageW, imageH, numLocations,
//	                   hasProp (0/1), stepPix*1e6, radiusPix*1e6, reserved
//	probe   2*windowN^2 float64 (re, im interleaved)
//	prop    2*windowN^2 float64 (present when hasProp == 1)
//	locs    numLocations x (int64 index, float64 x, y, radius)
//	meas    numLocations x windowN^2 float64 amplitudes
//
// The complete byte-level specification of every format in this
// package — PTYCHOv1, the OBJCKv1 object checkpoint and the PTYCHS
// incremental stream — together with the grid transport's PTGW wire
// frames, lives in docs/FORMATS.md.
package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"ptychopath/internal/grid"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

var magic = [8]byte{'P', 'T', 'Y', 'C', 'H', 'O', 'v', '1'}

// ErrHeaderBounds is returned by every reader in this package when a
// header declares dimensions outside the decoder's resource caps —
// frame (window) size, slice count, location count, image extent. The
// check runs BEFORE any payload-sized allocation, so a hostile or
// corrupt header can never commit the process to multi-gigabyte
// buffers it will immediately throw away.
var ErrHeaderBounds = errors.New("dataio: header dimensions out of bounds")

// Decoder resource caps. Generous for any real acquisition, small
// enough that a header passing them cannot demand a problematic
// allocation up front.
const (
	maxWindowN   = 4096
	maxSlices    = 1 << 14
	maxLocations = 1 << 20
	maxImageDim  = 1 << 20
)

// checkDatasetHeader bounds the PTYCHOv1 / PTYCHS geometry fields.
func checkDatasetHeader(windowN, slices, imageW, imageH, numLoc int) error {
	switch {
	case windowN <= 0 || windowN > maxWindowN:
		return fmt.Errorf("%w: window %d (want 1..%d)", ErrHeaderBounds, windowN, maxWindowN)
	case slices <= 0 || slices > maxSlices:
		return fmt.Errorf("%w: %d slices (want 1..%d)", ErrHeaderBounds, slices, maxSlices)
	case imageW <= 0 || imageW > maxImageDim || imageH <= 0 || imageH > maxImageDim:
		return fmt.Errorf("%w: image %dx%d (want 1..%d per edge)", ErrHeaderBounds, imageW, imageH, maxImageDim)
	case numLoc < 0 || numLoc > maxLocations:
		return fmt.Errorf("%w: %d locations (want 0..%d)", ErrHeaderBounds, numLoc, maxLocations)
	}
	return nil
}

// Write serializes a problem to w.
func Write(w io.Writer, prob *solver.Problem) error {
	if err := prob.Validate(); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hasProp := int64(0)
	if prob.Prop != nil {
		hasProp = 1
	}
	header := []int64{
		int64(prob.WindowN), int64(prob.Slices),
		int64(prob.Pattern.ImageW), int64(prob.Pattern.ImageH),
		int64(prob.Pattern.N()), hasProp,
		int64(math.Round(prob.Pattern.StepPix * 1e6)),
		int64(math.Round(prob.Pattern.RadiusPix * 1e6)),
		0,
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := writeComplex(bw, prob.Probe); err != nil {
		return err
	}
	if prob.Prop != nil {
		if err := writeComplex(bw, prob.Prop); err != nil {
			return err
		}
	}
	for _, l := range prob.Pattern.Locations {
		if err := binary.Write(bw, binary.LittleEndian, int64(l.Index)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, []float64{l.X, l.Y, l.Radius}); err != nil {
			return err
		}
	}
	for _, m := range prob.Meas {
		if err := binary.Write(bw, binary.LittleEndian, m.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeComplex(w io.Writer, a *grid.Complex2D) error {
	buf := make([]float64, 2*len(a.Data))
	for i, v := range a.Data {
		buf[2*i] = real(v)
		buf[2*i+1] = imag(v)
	}
	return binary.Write(w, binary.LittleEndian, buf)
}

func readComplex(r io.Reader, n int) (*grid.Complex2D, error) {
	buf := make([]float64, 2*n*n)
	if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
		return nil, err
	}
	a := grid.NewComplex2DSize(n, n)
	for i := range a.Data {
		a.Data[i] = complex(buf[2*i], buf[2*i+1])
	}
	return a, nil
}

// Read deserializes a problem from r.
func Read(r io.Reader) (*solver.Problem, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataio: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dataio: bad magic %q (not a PTYCHOv1 file)", m)
	}
	header := make([]int64, 9)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("dataio: reading header: %w", err)
	}
	windowN := int(header[0])
	slices := int(header[1])
	imageW, imageH := int(header[2]), int(header[3])
	numLoc := int(header[4])
	hasProp := header[5] == 1
	if err := checkDatasetHeader(windowN, slices, imageW, imageH, numLoc); err != nil {
		return nil, err
	}
	probe, err := readComplex(br, windowN)
	if err != nil {
		return nil, fmt.Errorf("dataio: reading probe: %w", err)
	}
	var prop *grid.Complex2D
	if hasProp {
		if prop, err = readComplex(br, windowN); err != nil {
			return nil, fmt.Errorf("dataio: reading propagator: %w", err)
		}
	}
	pat := &scan.Pattern{
		ImageW: imageW, ImageH: imageH,
		StepPix:   float64(header[6]) / 1e6,
		RadiusPix: float64(header[7]) / 1e6,
	}
	pat.Locations = make([]scan.Location, numLoc)
	for i := range pat.Locations {
		var idx int64
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return nil, fmt.Errorf("dataio: reading location %d: %w", i, err)
		}
		coords := make([]float64, 3)
		if err := binary.Read(br, binary.LittleEndian, coords); err != nil {
			return nil, fmt.Errorf("dataio: reading location %d: %w", i, err)
		}
		pat.Locations[i] = scan.Location{
			Index: int(idx), X: coords[0], Y: coords[1], Radius: coords[2],
		}
	}
	meas := make([]*grid.Float2D, numLoc)
	for i := range meas {
		a := grid.NewFloat2DSize(windowN, windowN)
		if err := binary.Read(br, binary.LittleEndian, a.Data); err != nil {
			return nil, fmt.Errorf("dataio: reading measurement %d: %w", i, err)
		}
		meas[i] = a
	}
	prob := &solver.Problem{
		Pattern: pat, Meas: meas, Probe: probe, Prop: prop,
		WindowN: windowN, Slices: slices,
	}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("dataio: loaded problem invalid: %w", err)
	}
	return prob, nil
}

// WriteFile serializes a problem to the named file.
func WriteFile(path string, prob *solver.Problem) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return Write(f, prob)
}

// ReadFile deserializes a problem from the named file.
func ReadFile(path string) (*solver.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return Read(f)
}
