// Package cluster models the hardware the paper evaluates on — the Oak
// Ridge Summit supercomputer (6 NVIDIA V100 GPUs per node, NVLink
// intra-node, EDR InfiniBand fat tree between nodes) — together with the
// calibrated performance coefficients the paper-scale experiments use.
//
// Reproduction note (DESIGN.md, repro band 2/5): no V100s or InfiniBand
// exist in this environment, so runtimes and memory footprints for
// Tables II/III and Fig 7 come from this model driving the discrete-
// event simulator in internal/des. The calibration anchors the cache-
// speedup curve and the waiting-time fraction against the LARGE Lead
// Titanate dataset (Table III(a)); the small dataset's rows are then
// predictions, and EXPERIMENTS.md records the deviations.
package cluster

import (
	"fmt"
	"math"

	"ptychopath/internal/multislice"
)

// Machine describes the cluster hardware.
type Machine struct {
	GPUsPerNode int
	MemPerGPUGB float64
	// NVLinkBW and IBBW are effective point-to-point bandwidths in
	// bytes/s; LatIntra and LatInter are per-message latencies in s.
	NVLinkBW float64
	IBBW     float64
	LatIntra float64
	LatInter float64
}

// Summit returns the machine of the paper's Sec. VI-A: 6 V100s per node,
// NVLink 50 GB/s one-way, EDR InfiniBand non-blocking fat tree.
func Summit() Machine {
	return Machine{
		GPUsPerNode: 6,
		MemPerGPUGB: 16,
		NVLinkBW:    50e9,
		IBBW:        12.5e9,
		LatIntra:    5e-6,
		LatInter:    10e-6,
	}
}

// Transfer returns the in-flight time for a message between two global
// GPU ranks, selecting NVLink inside a node and InfiniBand across nodes.
func (m Machine) Transfer(src, dst int, bytes int64) float64 {
	if src/m.GPUsPerNode == dst/m.GPUsPerNode {
		return m.LatIntra + float64(bytes)/m.NVLinkBW
	}
	return m.LatInter + float64(bytes)/m.IBBW
}

// CachePoint anchors the cache-speedup curve: at a per-GPU working set
// of WorkingSetGB the effective throughput is Factor times the
// large-working-set baseline.
type CachePoint struct {
	WorkingSetGB float64
	Factor       float64
}

// Calibration holds every fitted coefficient of the performance model in
// one place. DefaultCalibration documents the fit; experiments may
// perturb fields for sensitivity studies.
type Calibration struct {
	// BaseFlops is the effective per-GPU throughput (flop/s) at the
	// largest working set (poor cache locality). The paper's profiling
	// shows L1 hit rate rising 44%->59% as tiles shrink; CacheCurve
	// captures the resulting speedup.
	BaseFlops float64
	// CacheCurve anchors, descending working set. Interpolated
	// piecewise-linearly in log(working set), clamped at the ends.
	CacheCurve []CachePoint
	// WaitCoeff/WaitExp parameterize the GPU waiting-time fraction
	// gamma(n) = WaitCoeff * (n/WaitRefLoc)^WaitExp for n probe
	// locations per GPU — large tiles mean long, uneven gradient
	// computations and long waits (Fig 7b), tiny tiles almost none.
	WaitCoeff   float64
	WaitExp     float64
	WaitRefLoc  float64
	// MeasBytesPerPixel is detector storage per pixel (2 = float16, the
	// compact form needed to fit Table III's footprints).
	MeasBytesPerPixel float64
	// VoxelBytes is GPU object storage per voxel (8 = complex64).
	VoxelBytes float64
	// FixedOverheadGB covers probe, checkpointed wavefront stack and
	// FFT workspaces resident per GPU.
	FixedOverheadGB float64
	// IterOverheadSec is the per-iteration fixed cost (kernel launches,
	// pass bookkeeping).
	IterOverheadSec float64
	// HVEContentionExp shapes the Halo Voxel Exchange synchronization
	// blow-up as tiles approach the halo-size limit (phenomenological;
	// the paper reports the collapse but not its mechanism).
	HVEContentionExp float64
	// ThroughputScale multiplies BaseFlops per dataset (locality
	// differences between image sizes); keyed by dataset name, default 1.
	ThroughputScale map[string]float64
}

// DefaultCalibration returns the coefficients fitted against Table
// III(a) (large Lead Titanate, Gradient Decomposition):
//
//	K     locs/GPU  ws(GB)  paper s/loc  wait-split pure s/loc  factor
//	6     2772      9.14    1.200        0.388                  1.00
//	54    308       1.54    0.357        0.318                  1.22
//	198   84        0.66    0.268        0.262                  1.48
//	462   36        0.42    0.237        0.235                  1.65
//	924   18        0.32    0.233        0.233                  1.67
//
// BaseFlops = FlopsPerLocation(1024, 100) / 0.388 s.
func DefaultCalibration() Calibration {
	flops := multislice.FlopsPerLocation(1024, 100)
	return Calibration{
		BaseFlops: flops / 0.388,
		CacheCurve: []CachePoint{
			{9.14, 1.00},
			{1.54, 1.22},
			{0.66, 1.48},
			{0.42, 1.65},
			{0.32, 1.67},
		},
		WaitCoeff:         0.47,
		WaitExp:           1.3,
		WaitRefLoc:        700,
		MeasBytesPerPixel: 2,
		VoxelBytes:        8,
		FixedOverheadGB:   0.109,
		IterOverheadSec:   0.15,
		HVEContentionExp:  2.78,
		ThroughputScale: map[string]float64{
			"Lead Titanate small": 1.55,
			"Lead Titanate large": 1.0,
		},
	}
}

// CacheFactor interpolates the cache-speedup curve at the given working
// set (GB), piecewise-linear in log(ws), clamped outside the anchors.
func (c Calibration) CacheFactor(wsGB float64) float64 {
	pts := c.CacheCurve
	if len(pts) == 0 {
		return 1
	}
	if wsGB >= pts[0].WorkingSetGB {
		return pts[0].Factor
	}
	last := pts[len(pts)-1]
	if wsGB <= last.WorkingSetGB {
		return last.Factor
	}
	for i := 0; i+1 < len(pts); i++ {
		hi, lo := pts[i], pts[i+1]
		if wsGB <= hi.WorkingSetGB && wsGB >= lo.WorkingSetGB {
			t := (math.Log(hi.WorkingSetGB) - math.Log(wsGB)) /
				(math.Log(hi.WorkingSetGB) - math.Log(lo.WorkingSetGB))
			return hi.Factor + t*(lo.Factor-hi.Factor)
		}
	}
	return last.Factor
}

// WaitFrac returns gamma(n), the waiting-time fraction for a GPU owning
// n probe locations.
func (c Calibration) WaitFrac(nLoc int) float64 {
	if nLoc <= 0 {
		return 0
	}
	return c.WaitCoeff * math.Pow(float64(nLoc)/c.WaitRefLoc, c.WaitExp)
}

// Scale returns the dataset throughput multiplier (1 when unknown).
func (c Calibration) Scale(dataset string) float64 {
	if s, ok := c.ThroughputScale[dataset]; ok && s > 0 {
		return s
	}
	return 1
}

// DatasetSpec captures Table I plus the scan geometry needed by the
// models.
type DatasetSpec struct {
	Name               string
	DetectorN          int // diffraction pattern edge (1024)
	Locations          int
	ScanCols, ScanRows int
	ImageW, ImageH     int
	Slices             int
	PixelSizePM        float64
	// VoxelPM3 documents the voxel size string for Table I.
	VoxelPM3 string
}

// SmallLeadTitanate returns the paper's small dataset: 4158 probe
// locations (63x66 scan), 1536^2 x 100 reconstruction.
func SmallLeadTitanate() DatasetSpec {
	return DatasetSpec{
		Name:      "Lead Titanate small",
		DetectorN: 1024, Locations: 4158,
		ScanCols: 66, ScanRows: 63,
		ImageW: 1536, ImageH: 1536, Slices: 100,
		PixelSizePM: 10, VoxelPM3: "10x10x125 pm^3",
	}
}

// LargeLeadTitanate returns the paper's large dataset: 16632 probe
// locations (132x126 scan), 3072^2 x 100 reconstruction.
func LargeLeadTitanate() DatasetSpec {
	return DatasetSpec{
		Name:      "Lead Titanate large",
		DetectorN: 1024, Locations: 16632,
		ScanCols: 132, ScanRows: 126,
		ImageW: 3072, ImageH: 3072, Slices: 100,
		PixelSizePM: 10, VoxelPM3: "10x10x125 pm^3",
	}
}

// StepPix returns the scan step in pixels.
func (d DatasetSpec) StepPix() float64 { return float64(d.ImageW) / float64(d.ScanCols) }

// FlopsPerLocation returns the per-location gradient cost in flops.
func (d DatasetSpec) FlopsPerLocation() float64 {
	return multislice.FlopsPerLocation(d.DetectorN, d.Slices)
}

// MeasBytesPerLocation returns the stored size of one diffraction
// pattern under the calibration's detector precision.
func (d DatasetSpec) MeasBytesPerLocation(c Calibration) float64 {
	return float64(d.DetectorN*d.DetectorN) * c.MeasBytesPerPixel
}

// MostSquareGrid factors k into rows x cols with rows <= cols minimizing
// the aspect difference — how the decomposition grids the image.
func MostSquareGrid(k int) (rows, cols int) {
	if k <= 0 {
		panic(fmt.Sprintf("cluster: invalid GPU count %d", k))
	}
	best := 1
	for d := 1; d*d <= k; d++ {
		if k%d == 0 {
			best = d
		}
	}
	return best, k / best
}
