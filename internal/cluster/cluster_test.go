package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummitSpec(t *testing.T) {
	m := Summit()
	if m.GPUsPerNode != 6 || m.MemPerGPUGB != 16 {
		t.Fatal("Summit node spec drifted from the paper's Sec. VI-A")
	}
	if m.NVLinkBW != 50e9 {
		t.Fatal("NVLink bandwidth should be 50 GB/s one-way")
	}
}

func TestTransferSelectsLink(t *testing.T) {
	m := Summit()
	// Ranks 0 and 5 share node 0; ranks 5 and 6 are on different nodes.
	intra := m.Transfer(0, 5, 1e9)
	inter := m.Transfer(5, 6, 1e9)
	if intra >= inter {
		t.Fatalf("intra-node transfer %g not faster than inter-node %g", intra, inter)
	}
	wantIntra := m.LatIntra + 1e9/m.NVLinkBW
	if math.Abs(intra-wantIntra) > 1e-12 {
		t.Fatalf("intra = %g, want %g", intra, wantIntra)
	}
	wantInter := m.LatInter + 1e9/m.IBBW
	if math.Abs(inter-wantInter) > 1e-12 {
		t.Fatalf("inter = %g, want %g", inter, wantInter)
	}
}

func TestCacheFactorAnchorsAndClamps(t *testing.T) {
	cal := DefaultCalibration()
	// At each anchor the factor must be exact.
	for _, p := range cal.CacheCurve {
		if got := cal.CacheFactor(p.WorkingSetGB); math.Abs(got-p.Factor) > 1e-12 {
			t.Errorf("cf(%g) = %g, want anchor %g", p.WorkingSetGB, got, p.Factor)
		}
	}
	if cal.CacheFactor(100) != cal.CacheCurve[0].Factor {
		t.Error("clamp above")
	}
	last := cal.CacheCurve[len(cal.CacheCurve)-1]
	if cal.CacheFactor(0.001) != last.Factor {
		t.Error("clamp below")
	}
	// Empty curve degrades to 1.
	if (Calibration{}).CacheFactor(1) != 1 {
		t.Error("empty curve must give 1")
	}
}

func TestCacheFactorMonotoneProperty(t *testing.T) {
	cal := DefaultCalibration()
	f := func(a, b float64) bool {
		wsA := 0.05 + math.Abs(a)
		wsB := 0.05 + math.Abs(b)
		if wsA > wsB {
			wsA, wsB = wsB, wsA
		}
		// Smaller working set -> same or larger speedup.
		return cal.CacheFactor(wsA) >= cal.CacheFactor(wsB)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitFracShape(t *testing.T) {
	cal := DefaultCalibration()
	if cal.WaitFrac(0) != 0 || cal.WaitFrac(-5) != 0 {
		t.Fatal("non-positive locations must not wait")
	}
	// Monotone increasing in n.
	prev := 0.0
	for _, n := range []int{4, 36, 84, 308, 693, 2772} {
		g := cal.WaitFrac(n)
		if g <= prev {
			t.Fatalf("WaitFrac(%d) = %g not increasing", n, g)
		}
		prev = g
	}
	// Tiny at the paper's 4158-GPU operating point (4 locations/GPU).
	if cal.WaitFrac(4) > 0.01 {
		t.Fatalf("WaitFrac(4) = %g, want < 1%%", cal.WaitFrac(4))
	}
}

func TestScaleLookup(t *testing.T) {
	cal := DefaultCalibration()
	if cal.Scale("Lead Titanate large") != 1.0 {
		t.Fatal("large dataset scale must be 1")
	}
	if cal.Scale("Lead Titanate small") <= 1.0 {
		t.Fatal("small dataset should have a >1 locality scale")
	}
	if cal.Scale("unknown") != 1.0 {
		t.Fatal("unknown dataset must default to 1")
	}
}

func TestDatasetSpecsMatchTableI(t *testing.T) {
	s := SmallLeadTitanate()
	l := LargeLeadTitanate()
	if s.Locations != 4158 || l.Locations != 16632 {
		t.Fatal("location counts drifted from Table I")
	}
	if s.ImageW != 1536 || l.ImageW != 3072 || s.Slices != 100 || l.Slices != 100 {
		t.Fatal("reconstruction sizes drifted from Table I")
	}
	if s.DetectorN != 1024 || l.DetectorN != 1024 {
		t.Fatal("detector size drifted")
	}
	if s.ScanCols*s.ScanRows != s.Locations {
		t.Fatal("small scan grid inconsistent with location count")
	}
	if l.ScanCols*l.ScanRows != l.Locations {
		t.Fatal("large scan grid inconsistent with location count")
	}
}

func TestStepPixConsistent(t *testing.T) {
	l := LargeLeadTitanate()
	step := l.StepPix()
	if step < 20 || step > 30 {
		t.Fatalf("large dataset scan step %g px implausible", step)
	}
	// Derived overlap ratio vs the ~75 px probe radius (25 nm defocus x
	// 30 mrad) should exceed the paper's 70% threshold.
	probeRadius := 25e3 * 0.030 / l.PixelSizePM
	overlap := 1 - step/(2*probeRadius)
	if overlap < 0.7 {
		t.Fatalf("implied overlap %g below the paper's regime", overlap)
	}
}

func TestFlopsPerLocationMagnitude(t *testing.T) {
	l := LargeLeadTitanate()
	f := l.FlopsPerLocation()
	// ~4e10 flops per location (100 slices of 1024^2 FFT pairs).
	if f < 1e10 || f > 1e12 {
		t.Fatalf("flops per location %g implausible", f)
	}
}

func TestMostSquareGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 7: {1, 7},
		12: {3, 4}, 36: {6, 6}, 4158: {63, 66},
	}
	for k, want := range cases {
		r, c := MostSquareGrid(k)
		if r != want[0] || c != want[1] {
			t.Errorf("grid(%d) = %dx%d, want %dx%d", k, r, c, want[0], want[1])
		}
		if r*c != k {
			t.Errorf("grid(%d) does not factor k", k)
		}
	}
}

func TestMostSquareGridProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k%200) + 1
		r, c := MostSquareGrid(n)
		return r*c == n && r <= c && r >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMostSquareGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic for k <= 0")
		}
	}()
	MostSquareGrid(0)
}

func TestMeasBytesPerLocation(t *testing.T) {
	cal := DefaultCalibration()
	l := LargeLeadTitanate()
	got := l.MeasBytesPerLocation(cal)
	want := 1024 * 1024 * 2.0
	if got != want {
		t.Fatalf("meas bytes = %g, want %g", got, want)
	}
}
