package gradsync

import (
	"testing"

	"ptychopath/internal/phantom"
	"ptychopath/internal/tiling"
)

func TestIntraWorkersMatchesSingleThreaded(t *testing.T) {
	prob, obj := buildProblem(t, 6, 6, 0.75, 2)
	init := phantom.Vacuum(obj.Bounds(), 2)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))

	single, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 4,
		IntraWorkers: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 4,
		IntraWorkers: 3, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := range single.Slices {
		scale := single.Slices[s].MaxAbs()
		if d := multi.Slices[s].MaxDiff(single.Slices[s]); d > 1e-9*scale {
			t.Fatalf("slice %d: intra-parallel result differs by %g (summation-order tolerance exceeded)", s, d)
		}
	}
	for i := range single.CostHistory {
		rel := (multi.CostHistory[i] - single.CostHistory[i]) / (1 + single.CostHistory[i])
		if rel > 1e-9 || rel < -1e-9 {
			t.Fatalf("iteration %d cost differs: %g vs %g", i, multi.CostHistory[i], single.CostHistory[i])
		}
	}
}

func TestIntraWorkersDeterministic(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	run := func() *Result {
		res, err := Reconstruct(prob, init.Slices, Options{
			Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 3,
			IntraWorkers: 4, Timeout: testTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for s := range a.Slices {
		if a.Slices[s].MaxDiff(b.Slices[s]) != 0 {
			t.Fatal("intra-parallel runs must be bit-identical (deterministic merge order)")
		}
	}
}

func TestIntraWorkersRejectedInFaithfulMode(t *testing.T) {
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	if _, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeFaithful, StepSize: 0.02, Iterations: 1,
		IntraWorkers: 2, Timeout: testTimeout,
	}); err == nil {
		t.Fatal("IntraWorkers with faithful mode must be rejected")
	}
}

func TestIntraWorkersMoreThanLocations(t *testing.T) {
	// More goroutines than locations per tile must still work.
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 3, 3, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 2,
		IntraWorkers: 16, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostHistory[1] >= res.CostHistory[0] {
		t.Fatal("did not converge with oversubscribed intra-workers")
	}
}
