package gradsync

import (
	"context"
	"errors"
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/tiling"
)

// TestCancellationReturnsPartialResult verifies the collective
// cancellation contract: every rank stops at the same iteration
// boundary, the partial stitched result comes back with Ctx's error,
// and the cost history length matches the completed iterations.
func TestCancellationReturnsPartialResult(t *testing.T) {
	prob, _ := buildProblem(t, 6, 6, 0.6, 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices

	const cancelAfter = 3
	ctx, cancel := context.WithCancel(context.Background())
	res, err := Reconstruct(prob, init, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 50,
		Timeout: testTimeout, Ctx: ctx,
		OnIteration: func(iter int, cost float64) {
			if iter+1 == cancelAfter {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if got := len(res.CostHistory); got != cancelAfter {
		t.Fatalf("completed %d iterations, want %d", got, cancelAfter)
	}

	// The partial object must equal an uninterrupted run truncated at
	// the same iteration count.
	ref, err := Reconstruct(prob, init, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: cancelAfter,
		Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := range res.Slices {
		if d := res.Slices[s].MaxDiff(ref.Slices[s]); d != 0 {
			t.Fatalf("slice %d: partial result differs from truncated run by %g", s, d)
		}
	}
}

// TestSnapshotsAreStitchedAndPeriodic verifies OnSnapshot fires at the
// configured period with a stitched full-image object, and that the
// final snapshot equals the returned result.
func TestSnapshotsAreStitchedAndPeriodic(t *testing.T) {
	prob, _ := buildProblem(t, 6, 6, 0.6, 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices

	var iters []int
	var last []*grid.Complex2D
	res, err := Reconstruct(prob, init, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 7,
		Timeout: testTimeout, SnapshotEvery: 2,
		OnSnapshot: func(iter int, slices []*grid.Complex2D) error {
			iters = append(iters, iter)
			if !slices[0].Bounds.Eq(prob.ImageBounds()) {
				t.Errorf("snapshot bounds %v, want full image %v", slices[0].Bounds, prob.ImageBounds())
			}
			last = slices
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 3, 5}; len(iters) != len(want) || iters[0] != 1 || iters[1] != 3 || iters[2] != 5 {
		t.Fatalf("snapshot iterations %v, want %v", iters, want)
	}
	// One more iteration ran after the last snapshot, so the final
	// object must differ from it — but resuming from the snapshot is
	// what the jobs service does, so the snapshot must be a genuine
	// intermediate state: re-running 1 iteration from it matches.
	cont, err := Reconstruct(prob, last, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := range res.Slices {
		if d := cont.Slices[s].MaxDiff(res.Slices[s]); d > 1e-12 {
			t.Fatalf("slice %d: snapshot+1 iteration differs from full run by %g", s, d)
		}
	}
}

// TestSnapshotErrorAbortsAllRanks verifies a failing OnSnapshot stops
// the whole world without deadlock.
func TestSnapshotErrorAbortsAllRanks(t *testing.T) {
	prob, _ := buildProblem(t, 4, 4, 0.5, 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices

	boom := errors.New("disk full")
	_, err := Reconstruct(prob, init, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 10,
		Timeout: testTimeout, SnapshotEvery: 2,
		OnSnapshot: func(iter int, slices []*grid.Complex2D) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the snapshot error", err)
	}
}
