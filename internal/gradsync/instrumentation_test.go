package gradsync

import (
	"testing"

	"ptychopath/internal/phantom"
	"ptychopath/internal/tiling"
)

func TestPerRankTimingRecorded(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 3, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRankComputeNS) != 4 || len(res.PerRankCommNS) != 4 {
		t.Fatal("timing arrays missing")
	}
	for rank := 0; rank < 4; rank++ {
		if res.PerRankComputeNS[rank] <= 0 {
			t.Fatalf("rank %d recorded no compute time", rank)
		}
		if res.PerRankCommNS[rank] < 0 {
			t.Fatalf("rank %d negative comm time", rank)
		}
	}
	// Gradient computation must dominate the tiny exchanges at this
	// scale (sanity on the split, not a performance assertion).
	total := func(xs []int64) int64 {
		var s int64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if total(res.PerRankComputeNS) == 0 {
		t.Fatal("no compute recorded at all")
	}
	_ = total(res.PerRankCommNS)
}

func TestStopBelowCostStopsEarly(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))

	full, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 12, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a threshold the run crosses midway.
	mid := full.CostHistory[len(full.CostHistory)/2]

	stopped, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 12,
		StopBelowCost: mid, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stopped.CostHistory) >= len(full.CostHistory) {
		t.Fatalf("early stop did not trigger: %d vs %d iterations",
			len(stopped.CostHistory), len(full.CostHistory))
	}
	last := stopped.CostHistory[len(stopped.CostHistory)-1]
	if last >= mid {
		t.Fatalf("stopped at cost %g, threshold %g", last, mid)
	}
	// The truncated history must be a prefix of the full one.
	for i, c := range stopped.CostHistory {
		if c != full.CostHistory[i] {
			t.Fatalf("history diverged at %d: %g vs %g", i, c, full.CostHistory[i])
		}
	}
}

func TestStopBelowCostZeroDisabled(t *testing.T) {
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 5, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostHistory) != 5 {
		t.Fatalf("unexpected early stop: %d iterations", len(res.CostHistory))
	}
}
