package gradsync

import (
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/tiling"
)

// TestIterOffsetShiftsReportedIndices: epoch callers (internal/stream)
// re-run Reconstruct over a growing location set and rely on
// IterOffset to keep OnIteration / OnSnapshot indices continuous
// across epochs — without changing how many iterations run or what
// they compute.
func TestIterOffsetShiftsReportedIndices(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))

	const offset = 10
	var iters, snaps []int
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 4,
		Timeout: testTimeout, IterOffset: offset,
		OnIteration:   func(iter int, _ float64) { iters = append(iters, iter) },
		SnapshotEvery: 2,
		OnSnapshot: func(iter int, _ []*grid.Complex2D) error {
			snaps = append(snaps, iter)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostHistory) != 4 {
		t.Fatalf("ran %d iterations, want 4 (offset must not change the count)", len(res.CostHistory))
	}
	wantIters := []int{offset, offset + 1, offset + 2, offset + 3}
	if len(iters) != len(wantIters) {
		t.Fatalf("OnIteration fired %d times, want %d", len(iters), len(wantIters))
	}
	for i, w := range wantIters {
		if iters[i] != w {
			t.Errorf("OnIteration index %d: got %d, want %d", i, iters[i], w)
		}
	}
	wantSnaps := []int{offset + 1, offset + 3}
	if len(snaps) != len(wantSnaps) {
		t.Fatalf("OnSnapshot fired %d times, want %d", len(snaps), len(wantSnaps))
	}
	for i, w := range wantSnaps {
		if snaps[i] != w {
			t.Errorf("OnSnapshot index %d: got %d, want %d", i, snaps[i], w)
		}
	}

	// The trajectory itself is unchanged by the offset.
	ref, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 4, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := range ref.Slices {
		if md := ref.Slices[s].MaxDiff(res.Slices[s]); md != 0 {
			t.Fatalf("slice %d: IterOffset changed the reconstruction by %g", s, md)
		}
	}
}
