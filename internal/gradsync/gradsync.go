// Package gradsync implements the paper's primary contribution: parallel
// ptychographic reconstruction by Image Gradient Decomposition.
//
// The reconstruction is tessellated into a mesh of halo-extended tiles,
// one per rank ("GPU"). Each rank computes image gradients only for its
// OWN probe locations (no redundant locations, unlike Halo Voxel
// Exchange) and accumulates them into a per-rank gradient buffer. The
// buffers are then synchronized with four directional passes (Sec. IV):
//
//	vertical forward   — each tile row ADDS its buffer overlap into the
//	                     row below, top to bottom;
//	vertical backward  — each row REPLACES the row above's overlap with
//	                     its accumulated values, bottom to top;
//	horizontal forward/backward — the same along tile rows.
//
// The chained add-then-replace sweeps propagate contributions between
// arbitrarily distant tiles (the paper's high-overlap case, Fig 2(f))
// because consecutive extended tiles always nest their overlaps. After
// the four passes every rank's buffer equals the GLOBAL image gradient
// of Eqn. (2) restricted to its extended tile — a property the tests
// verify against the serial reference to machine precision.
//
// Communication uses non-blocking isend/irecv with no global barriers;
// a rank starts its horizontal pass as soon as its own vertical traffic
// is done, which is exactly the paper's Asynchronous Pipelining for
// Parallel Passes (APPP, Fig 5). Setting Options.DisableAPPP inserts
// world barriers between passes to emulate the "w/o APPP" ablation of
// Fig 7(b).
package gradsync

import (
	"context"
	"fmt"
	"time"

	"ptychopath/internal/collective"
	"ptychopath/internal/grid"
	"ptychopath/internal/simmpi"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

// Mode selects the update rule.
type Mode int

const (
	// ModeBatch applies only the synchronized accumulated gradients
	// (Alg 1 without line 8). With one communication round per
	// iteration this is mathematically identical to serial batch
	// gradient descent — the equivalence tests rely on it.
	ModeBatch Mode = iota
	// ModeFaithful follows Alg 1 literally: an immediate local update
	// after every probe location plus the accumulated-buffer update at
	// every communication round.
	ModeFaithful
)

// Options configures a parallel reconstruction.
type Options struct {
	Mesh *tiling.Mesh
	Mode Mode
	// StepSize is the gradient-descent step alpha.
	StepSize float64
	// Iterations is the number of full cycles through all locations.
	Iterations int
	// RoundsPerIteration is how many communication rounds (sets of
	// four directional passes) run per iteration — the paper's
	// communication-frequency parameter T expressed as a count.
	// 1 (default when 0) = once per iteration; Fig 9 compares 1, 2 and
	// "every location".
	RoundsPerIteration int
	// DisableAPPP inserts global barriers between the directional
	// passes, emulating the non-pipelined baseline of Fig 7(b).
	DisableAPPP bool
	// Timeout bounds every blocking communication (0 = default).
	Timeout time.Duration
	// IntraWorkers is the number of goroutines each rank uses to
	// compute its locations' gradients concurrently — the functional
	// stand-in for a GPU's internal parallelism. Only ModeBatch
	// supports it (per-location sequential updates are order-dependent
	// by definition); values <= 1 mean single-threaded. Results match
	// the single-threaded run up to floating-point summation order.
	IntraWorkers int
	// StopBelowCost, when positive, stops the reconstruction early once
	// the global cost falls below it. The decision uses the all-reduced
	// cost, so every rank stops at the same iteration (no deadlock).
	StopBelowCost float64
	// OnIteration, when non-nil, is invoked on rank 0 with the global
	// cost after each iteration.
	OnIteration func(iter int, cost float64)
	// OnRankStats, when non-nil, is invoked on EVERY rank after each
	// iteration with that iteration's compute and communication time
	// deltas in nanoseconds — the per-phase timing feed for span
	// tracing and elastic scheduling. Unlike OnIteration it fires on
	// all ranks concurrently (in-process runs share one Options), so
	// the callback must be safe for concurrent use. It runs outside
	// the per-location hot loop: once per rank per iteration.
	OnRankStats func(rank, iter int, computeNS, commNS int64)
	// IterOffset is added to the iteration index reported to
	// OnIteration and OnSnapshot. Epoch-based callers — the streaming
	// engine re-partitions the growing location set and re-runs
	// Reconstruct once per epoch — use it to keep reported indices
	// continuous across epochs. It does not change how many iterations
	// run.
	IterOffset int
	// Ctx, when non-nil, cancels the run at iteration boundaries. The
	// decision is collective — every rank contributes its view of
	// Ctx.Err() to an allreduce so all ranks stop at the same iteration
	// (no deadlocked exchanges). Reconstruct then returns the PARTIAL
	// stitched Result together with Ctx's error.
	Ctx context.Context
	// SnapshotEvery, together with OnSnapshot, emits periodic object
	// snapshots: after every SnapshotEvery-th iteration the tiles are
	// stitched and OnSnapshot runs on rank 0 with the 0-based iteration
	// index and the stitched slices (freshly allocated — safe to
	// retain). A non-nil error aborts the run on every rank.
	SnapshotEvery int
	OnSnapshot    func(iter int, slices []*grid.Complex2D) error
}

func (o *Options) validate(prob *solver.Problem) error {
	if o.Mesh == nil {
		return fmt.Errorf("gradsync: nil mesh")
	}
	if o.StepSize <= 0 {
		return fmt.Errorf("gradsync: step size must be positive, got %g", o.StepSize)
	}
	if o.Iterations <= 0 {
		return fmt.Errorf("gradsync: iterations must be positive, got %d", o.Iterations)
	}
	if o.RoundsPerIteration < 0 {
		return fmt.Errorf("gradsync: rounds per iteration must be >= 0, got %d", o.RoundsPerIteration)
	}
	if o.IntraWorkers > 1 && o.Mode == ModeFaithful {
		return fmt.Errorf("gradsync: IntraWorkers requires ModeBatch (faithful Alg 1 updates are order-dependent)")
	}
	if err := prob.Validate(); err != nil {
		return err
	}
	if !o.Mesh.Image.Eq(prob.ImageBounds()) {
		return fmt.Errorf("gradsync: mesh image %v != problem image %v",
			o.Mesh.Image, prob.ImageBounds())
	}
	return nil
}

// Result carries the stitched reconstruction and run statistics.
type Result struct {
	// Slices is the stitched reconstruction (halos abandoned, interiors
	// concatenated — Alg 1 line 20).
	Slices []*grid.Complex2D
	// CostHistory holds the global cost F(V) per iteration.
	CostHistory []float64
	// BytesSent and MessagesSent aggregate all gradient exchanges.
	BytesSent    int64
	MessagesSent int64
	// PerRankLocations[rank] is the number of probe locations owned.
	PerRankLocations []int
	// PerRankMemBytes estimates each rank's resident footprint:
	// extended-tile object + gradient buffer + scratch + owned
	// measurements + model workspaces.
	PerRankMemBytes []int64
	// PerRankComputeNS / PerRankCommNS are measured wall-clock
	// nanoseconds each rank spent in gradient computation and in the
	// directional passes (the functional counterpart of Fig 7b's
	// compute and wait+comm bars).
	PerRankComputeNS []int64
	PerRankCommNS    []int64
}

// message tags for the four directional passes.
const (
	tagVF = 1
	tagVB = 2
	tagHF = 3
	tagHB = 4
)

// worker is the per-rank state. All gradient scratch lives in ws (and,
// when IntraWorkers is enabled, in the persistent intra pool), so the
// per-location hot loop is allocation-free in steady state.
type worker struct {
	comm   simmpi.Transport
	mesh   *tiling.Mesh
	prob   *solver.Problem
	opt    *Options
	r, c   int
	ext    grid.Rect
	slices []*grid.Complex2D // reconstruction on the extended tile
	acc    []*grid.Complex2D // accumulated gradient buffer (AccBuf_k)
	ws     *solver.Workspace // engine + per-location gradient scratch
	owned  []int
	intra  *intraPool // persistent IntraWorkers goroutine pool (nil if <= 1)

	computeNS int64 // wall-clock spent in gradient computation
	commNS    int64 // wall-clock spent in the directional passes
}

func newWorker(comm simmpi.Transport, prob *solver.Problem, opt *Options,
	owned [][]int, init []*grid.Complex2D) *worker {
	m := opt.Mesh
	r, c := m.RowCol(comm.Rank())
	ext := m.Extended(r, c)
	w := &worker{
		comm: comm, mesh: m, prob: prob, opt: opt,
		r: r, c: c, ext: ext,
		ws:    prob.NewWorkspace(ext),
		owned: owned[comm.Rank()],
	}
	w.slices = make([]*grid.Complex2D, prob.Slices)
	w.acc = make([]*grid.Complex2D, prob.Slices)
	for s := 0; s < prob.Slices; s++ {
		w.slices[s] = grid.NewComplex2D(ext)
		w.slices[s].CopyRegion(init[s], ext)
		w.acc[s] = grid.NewComplex2D(ext)
	}
	if opt.IntraWorkers > 1 {
		w.intra = newIntraPool(w, opt.IntraWorkers)
	}
	return w
}

// close releases the worker's goroutine pool. Must be called when the
// rank is done (idempotent via nil check).
func (w *worker) close() {
	if w.intra != nil {
		w.intra.close()
		w.intra = nil
	}
}

// memBytes estimates the rank's resident memory (complex128 = 16 B,
// float64 = 8 B).
func (w *worker) memBytes() int64 {
	ext := int64(w.ext.Area()) * 16
	tileSide := ext * int64(w.prob.Slices) * 3 // slices + acc + workspace grads
	n2 := int64(w.prob.WindowN * w.prob.WindowN)
	meas := int64(len(w.owned)) * n2 * 8
	model := n2 * 16 * int64(w.prob.Slices+4) // psi stack + engine workspaces
	total := tileSide + meas + model
	if w.intra != nil {
		// The rank workspace's gradient arrays never materialize (all
		// chunks go through the pool); each persistent sub-worker instead
		// holds its own tile-sized gradient arrays plus a model workspace.
		total -= ext * int64(w.prob.Slices)
		total += int64(len(w.intra.subs)) * (ext*int64(w.prob.Slices) + model)
	}
	return total
}

// pack flattens region r of each slice buffer into one payload (the
// shared slices-major layout of collective.PackRegion).
func pack(arrs []*grid.Complex2D, region grid.Rect) []complex128 {
	return collective.PackRegion(arrs, region)
}

// unpackAdd adds the payload into region r of each buffer.
func unpackAdd(arrs []*grid.Complex2D, region grid.Rect, data []complex128) error {
	if len(data) != region.Area()*len(arrs) {
		return fmt.Errorf("gradsync: payload %d for region %v x %d slices",
			len(data), region, len(arrs))
	}
	k := 0
	for _, a := range arrs {
		for y := region.Y0; y < region.Y1; y++ {
			row := a.Row(y)
			x0 := region.X0 - a.Bounds.X0
			for x := 0; x < region.W(); x++ {
				row[x0+x] += data[k]
				k++
			}
		}
	}
	return nil
}

// unpackReplace overwrites region r of each buffer with the payload.
func unpackReplace(arrs []*grid.Complex2D, region grid.Rect, data []complex128) error {
	if len(data) != region.Area()*len(arrs) {
		return fmt.Errorf("gradsync: payload %d for region %v x %d slices",
			len(data), region, len(arrs))
	}
	k := 0
	for _, a := range arrs {
		for y := region.Y0; y < region.Y1; y++ {
			row := a.Row(y)
			x0 := region.X0 - a.Bounds.X0
			copy(row[x0:x0+region.W()], data[k:k+region.W()])
			k += region.W()
		}
	}
	return nil
}

// runPasses executes the four directional passes on the accumulation
// buffers (Sec. IV + Fig 5). After it returns, w.acc holds the global
// gradient restricted to the extended tile.
func (w *worker) runPasses() error {
	m := w.mesh
	barrier := func() error {
		if w.opt.DisableAPPP {
			return w.comm.Barrier()
		}
		return nil
	}

	// Vertical forward: add downward along the tile column.
	if w.r > 0 {
		region := m.VerticalOverlap(w.r-1, w.c)
		if !region.Empty() {
			data, err := w.comm.Recv(m.Rank(w.r-1, w.c), tagVF)
			if err != nil {
				return err
			}
			if err := unpackAdd(w.acc, region, data); err != nil {
				return err
			}
		}
	}
	if w.r < m.Rows-1 {
		region := m.VerticalOverlap(w.r, w.c)
		if !region.Empty() {
			w.comm.Isend(m.Rank(w.r+1, w.c), tagVF, pack(w.acc, region))
		}
	}
	if err := barrier(); err != nil {
		return err
	}

	// Vertical backward: replace upward.
	if w.r < m.Rows-1 {
		region := m.VerticalOverlap(w.r, w.c)
		if !region.Empty() {
			data, err := w.comm.Recv(m.Rank(w.r+1, w.c), tagVB)
			if err != nil {
				return err
			}
			if err := unpackReplace(w.acc, region, data); err != nil {
				return err
			}
		}
	}
	if w.r > 0 {
		region := m.VerticalOverlap(w.r-1, w.c)
		if !region.Empty() {
			w.comm.Isend(m.Rank(w.r-1, w.c), tagVB, pack(w.acc, region))
		}
	}
	if err := barrier(); err != nil {
		return err
	}

	// Horizontal forward: add rightward along the tile row. With APPP a
	// rank enters this pass as soon as its own vertical traffic is done
	// (cross-direction pipelining, Fig 5).
	if w.c > 0 {
		region := m.HorizontalOverlap(w.r, w.c-1)
		if !region.Empty() {
			data, err := w.comm.Recv(m.Rank(w.r, w.c-1), tagHF)
			if err != nil {
				return err
			}
			if err := unpackAdd(w.acc, region, data); err != nil {
				return err
			}
		}
	}
	if w.c < m.Cols-1 {
		region := m.HorizontalOverlap(w.r, w.c)
		if !region.Empty() {
			w.comm.Isend(m.Rank(w.r, w.c+1), tagHF, pack(w.acc, region))
		}
	}
	if err := barrier(); err != nil {
		return err
	}

	// Horizontal backward: replace leftward.
	if w.c < m.Cols-1 {
		region := m.HorizontalOverlap(w.r, w.c)
		if !region.Empty() {
			data, err := w.comm.Recv(m.Rank(w.r, w.c+1), tagHB)
			if err != nil {
				return err
			}
			if err := unpackReplace(w.acc, region, data); err != nil {
				return err
			}
		}
	}
	if w.c > 0 {
		region := m.HorizontalOverlap(w.r, w.c-1)
		if !region.Empty() {
			w.comm.Isend(m.Rank(w.r, w.c-1), tagHB, pack(w.acc, region))
		}
	}
	return barrier()
}

// applyAcc performs V_k <- V_k - alpha * AccBuf_k and clears the buffer
// (Alg 1 lines 14-16).
func (w *worker) applyAcc() {
	step := complex(w.opt.StepSize, 0)
	for s := range w.slices {
		w.slices[s].AddScaled(w.acc[s], -step)
		w.acc[s].Zero()
	}
}

// iteration runs one full cycle through the rank's locations with the
// configured number of communication rounds, returning the local cost.
func (w *worker) iteration() (float64, error) {
	rounds := w.opt.RoundsPerIteration
	if rounds <= 0 {
		rounds = 1
	}
	var cost float64
	n := len(w.owned)
	step := complex(w.opt.StepSize, 0)
	done := 0
	for round := 0; round < rounds; round++ {
		computeStart := time.Now()
		// This round covers owned locations [done, upto).
		upto := (round + 1) * n / rounds
		if w.opt.IntraWorkers > 1 {
			cost += w.gradientChunkParallel(done, upto)
			done = upto
		} else {
			for ; done < upto; done++ {
				li := w.owned[done]
				loc := w.prob.Pattern.Locations[li]
				w.ws.ZeroGrads()
				f := w.ws.LossGrad(w.slices, loc.Window(w.prob.WindowN), w.prob.Meas[li])
				cost += f
				for s := range w.acc {
					w.acc[s].AddScaled(w.ws.Grads()[s], 1) // AccBuf += grad (line 7)
				}
				if w.opt.Mode == ModeFaithful {
					for s := range w.slices {
						w.slices[s].AddScaled(w.ws.Grads()[s], -step) // line 8
					}
				}
			}
		}
		w.computeNS += time.Since(computeStart).Nanoseconds()
		commStart := time.Now()
		if err := w.runPasses(); err != nil {
			return 0, err
		}
		w.commNS += time.Since(commStart).Nanoseconds()
		w.applyAcc()
	}
	return cost, nil
}

// intraSub is one member of the persistent IntraWorkers pool: a
// long-lived goroutine owning its own Workspace (engine + local
// accumulation arrays), fed location ranges over an unbuffered channel.
// Keeping the goroutines and their arenas alive for the whole run is
// what makes intra-parallel gradient computation allocation-free in
// steady state — the seed respawned goroutines and reallocated
// tile-sized buffers on every communication round.
type intraSub struct {
	ws   *solver.Workspace
	work chan [2]int  // owned-location index range [lo, hi)
	done chan float64 // cost of the completed range
}

// intraPool is the per-rank pool. Sub-workers are dispatched and
// drained in index order, so the merge into AccBuf is deterministic and
// bit-identical to the seed's spawn-per-chunk implementation.
type intraPool struct {
	subs []*intraSub
}

func newIntraPool(w *worker, nw int) *intraPool {
	pool := &intraPool{subs: make([]*intraSub, nw)}
	for j := range pool.subs {
		sub := &intraSub{
			ws:   w.prob.NewWorkspace(w.ext),
			work: make(chan [2]int),
			done: make(chan float64),
		}
		pool.subs[j] = sub
		go func() {
			for r := range sub.work {
				// Zero here, not on the dispatcher: nw tile-sized stacks
				// clear in parallel instead of serially before dispatch.
				sub.ws.ZeroGrads()
				var cost float64
				for i := r[0]; i < r[1]; i++ {
					li := w.owned[i]
					loc := w.prob.Pattern.Locations[li]
					cost += sub.ws.LossGrad(w.slices, loc.Window(w.prob.WindowN), w.prob.Meas[li])
				}
				sub.done <- cost
			}
		}()
	}
	return pool
}

// close shuts down the pool's goroutines. Safe only when no chunk is in
// flight.
func (p *intraPool) close() {
	for _, s := range p.subs {
		close(s.work)
	}
}

// gradientChunkParallel spreads the owned locations [lo, hi) across the
// persistent IntraWorkers pool, each sub-worker accumulating into its
// own workspace, then merges into w.acc in deterministic sub-worker
// order.
func (w *worker) gradientChunkParallel(lo, hi int) float64 {
	nw := len(w.intra.subs)
	if span := hi - lo; span < nw {
		nw = span
	}
	if nw <= 1 {
		// Tiny chunks: one pass on the rank's own workspace engine,
		// accumulating straight into AccBuf.
		var cost float64
		for i := lo; i < hi; i++ {
			li := w.owned[i]
			loc := w.prob.Pattern.Locations[li]
			cost += w.ws.Eng.LossGrad(w.slices, loc.Window(w.prob.WindowN),
				w.prob.Meas[li], w.acc)
		}
		return cost
	}
	for j := 0; j < nw; j++ {
		sub := w.intra.subs[j]
		from := lo + (hi-lo)*j/nw
		to := lo + (hi-lo)*(j+1)/nw
		sub.work <- [2]int{from, to}
	}
	var cost float64
	for j := 0; j < nw; j++ {
		sub := w.intra.subs[j]
		cost += <-sub.done
		for s := range w.acc {
			w.acc[s].AddScaled(sub.ws.Grads()[s], 1)
		}
	}
	return cost
}

// RankOutcome is one rank's view of a finished (or cancelled) run: the
// final extended-tile object, this rank's statistics, and whether the
// run stopped at a collective cancellation. It is everything a remote
// worker must ship back to a coordinator for stitching — the
// distributed grid (internal/transport, internal/gridworker) serializes
// exactly this.
type RankOutcome struct {
	// Slices is the rank's reconstruction on its extended-tile bounds.
	Slices []*grid.Complex2D
	// CostHistory holds the all-reduced global cost per iteration
	// (identical on every rank).
	CostHistory []float64
	// Locations is the number of probe locations this rank owned.
	Locations int
	// MemBytes estimates the rank's resident footprint.
	MemBytes int64
	// ComputeNS and CommNS are wall-clock nanoseconds spent in gradient
	// computation and in the directional passes.
	ComputeNS, CommNS int64
	// SentBytes and SentMessages count this rank's outgoing payload
	// traffic.
	SentBytes, SentMessages int64
	// Cancelled reports that the run stopped early at a collective
	// Ctx-cancellation decision; Slices then holds the partial state.
	Cancelled bool
}

// RunRank executes one rank of the Gradient Decomposition
// reconstruction against an arbitrary transport endpoint. Every rank of
// comm's world must call RunRank with identical prob, init and opt —
// Reconstruct does so over an in-process world, and the distributed
// grid runs the same function in worker processes over TCP; the results
// are bit-identical because this is, literally, the same code.
//
// init provides the initial object slices on the full image bounds; it
// is not mutated. The returned outcome's Slices live on this rank's
// extended tile.
func RunRank(comm simmpi.Transport, prob *solver.Problem, init []*grid.Complex2D, opt Options) (*RankOutcome, error) {
	if err := opt.validate(prob); err != nil {
		return nil, err
	}
	if len(init) != prob.Slices {
		return nil, fmt.Errorf("gradsync: %d initial slices, want %d", len(init), prob.Slices)
	}
	if comm.Size() != opt.Mesh.NumTiles() {
		return nil, fmt.Errorf("gradsync: world size %d != mesh tiles %d", comm.Size(), opt.Mesh.NumTiles())
	}
	// Location assignment is deterministic from pattern + mesh, so every
	// rank computes the identical partition locally — no distribution
	// step, no coordinator round-trip.
	owned := opt.Mesh.AssignLocations(prob.Pattern)

	snapFn := opt.OnSnapshot
	if snapFn != nil && opt.IterOffset != 0 {
		inner := opt.OnSnapshot
		snapFn = func(iter int, slices []*grid.Complex2D) error {
			return inner(opt.IterOffset+iter, slices)
		}
	}
	snaps := collective.NewSnapshots(opt.Mesh, opt.SnapshotEvery, snapFn)

	w := newWorker(comm, prob, &opt, owned, init)
	defer w.close()
	out := &RankOutcome{
		Locations: len(w.owned),
		MemBytes:  w.memBytes(),
	}
	hist := make([]float64, 0, opt.Iterations)
	var prevComputeNS, prevCommNS int64
	for iter := 0; iter < opt.Iterations; iter++ {
		local, err := w.iteration()
		if err != nil {
			return nil, fmt.Errorf("rank %d iteration %d: %w", comm.Rank(), iter, err)
		}
		global, err := comm.AllreduceSum(local)
		if err != nil {
			return nil, err
		}
		hist = append(hist, global)
		if opt.OnRankStats != nil {
			// w.computeNS/commNS are cumulative; report this
			// iteration's delta so the callback sees per-phase time
			// per iteration, not a running total.
			opt.OnRankStats(comm.Rank(), opt.IterOffset+iter,
				w.computeNS-prevComputeNS, w.commNS-prevCommNS)
			prevComputeNS, prevCommNS = w.computeNS, w.commNS
		}
		if comm.Rank() == 0 && opt.OnIteration != nil {
			opt.OnIteration(opt.IterOffset+iter, global)
		}
		if snaps.Due(iter) {
			if err := snaps.Run(comm, w.slices, iter); err != nil {
				return nil, fmt.Errorf("gradsync: snapshot at iteration %d: %w", iter, err)
			}
		}
		// Collective early stop: the all-reduced cost is identical
		// on every rank, so all ranks break together.
		if opt.StopBelowCost > 0 && global < opt.StopBelowCost {
			break
		}
		if stop, err := collective.Cancelled(comm, opt.Ctx); err != nil {
			return nil, err
		} else if stop {
			out.Cancelled = true
			break
		}
	}
	out.Slices = w.slices
	out.CostHistory = hist
	out.ComputeNS = w.computeNS
	out.CommNS = w.commNS
	out.SentBytes = comm.SentBytes()
	out.SentMessages = comm.SentMessages()
	return out, nil
}

// Reconstruct runs the parallel Gradient Decomposition reconstruction
// over an in-process world (one goroutine per rank). init provides the
// initial object slices on the full image bounds (typically vacuum); it
// is not mutated.
func Reconstruct(prob *solver.Problem, init []*grid.Complex2D, opt Options) (*Result, error) {
	if err := opt.validate(prob); err != nil {
		return nil, err
	}
	if len(init) != prob.Slices {
		return nil, fmt.Errorf("gradsync: %d initial slices, want %d", len(init), prob.Slices)
	}
	m := opt.Mesh
	ranks := m.NumTiles()
	outs := make([]*RankOutcome, ranks)

	world := simmpi.NewWorld(ranks, opt.Timeout)
	err := world.RunAll(func(comm *simmpi.Comm) error {
		out, err := RunRank(comm, prob, init, opt)
		if err != nil {
			return err
		}
		outs[comm.Rank()] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := assembleResult(m, outs)
	res.BytesSent = world.BytesSent()
	res.MessagesSent = world.MessagesSent()
	if outs[0].Cancelled {
		return res, opt.Ctx.Err()
	}
	return res, nil
}

// assembleResult stitches per-rank outcomes into the aggregate Result —
// shared by the in-process driver above and the grid coordinator
// (internal/jobs), which receives the outcomes over TCP instead.
func assembleResult(m *tiling.Mesh, outs []*RankOutcome) *Result {
	ranks := len(outs)
	tiles := make([][]*grid.Complex2D, ranks)
	res := &Result{
		CostHistory:      outs[0].CostHistory,
		PerRankLocations: make([]int, ranks),
		PerRankMemBytes:  make([]int64, ranks),
		PerRankComputeNS: make([]int64, ranks),
		PerRankCommNS:    make([]int64, ranks),
	}
	for rank, out := range outs {
		tiles[rank] = out.Slices
		res.PerRankLocations[rank] = out.Locations
		res.PerRankMemBytes[rank] = out.MemBytes
		res.PerRankComputeNS[rank] = out.ComputeNS
		res.PerRankCommNS[rank] = out.CommNS
	}
	res.Slices = m.StitchSlices(tiles)
	return res
}

// AssembleResult is the exported form of the outcome stitch for
// drivers outside this package (the grid coordinator). outs must have
// exactly mesh.NumTiles() entries in rank order, every entry non-nil.
func AssembleResult(m *tiling.Mesh, outs []*RankOutcome) (*Result, error) {
	if len(outs) != m.NumTiles() {
		return nil, fmt.Errorf("gradsync: %d outcomes for %d tiles", len(outs), m.NumTiles())
	}
	for i, o := range outs {
		if o == nil || len(o.Slices) == 0 {
			return nil, fmt.Errorf("gradsync: missing outcome for rank %d", i)
		}
	}
	res := assembleResult(m, outs)
	for _, o := range outs {
		res.BytesSent += o.SentBytes
		res.MessagesSent += o.SentMessages
	}
	return res, nil
}

// ParallelGradient computes the total image gradient of Eqn. (2) via the
// decomposition: each rank computes gradients for its own locations on
// its extended tile, the four passes synchronize the buffers, and the
// interiors are stitched. It returns the stitched gradient and every
// rank's post-pass buffer (on extended bounds) so tests can verify the
// stronger invariant that each buffer equals the global gradient
// restricted to its extended tile.
func ParallelGradient(prob *solver.Problem, full []*grid.Complex2D, mesh *tiling.Mesh,
	disableAPPP bool, timeout time.Duration) ([]*grid.Complex2D, [][]*grid.Complex2D, error) {
	opt := Options{
		Mesh: mesh, Mode: ModeBatch, StepSize: 1, Iterations: 1,
		RoundsPerIteration: 1, DisableAPPP: disableAPPP, Timeout: timeout,
	}
	if err := opt.validate(prob); err != nil {
		return nil, nil, err
	}
	owned := mesh.AssignLocations(prob.Pattern)
	ranks := mesh.NumTiles()
	buffers := make([][]*grid.Complex2D, ranks)
	err := simmpi.Run(ranks, timeout, func(comm *simmpi.Comm) error {
		w := newWorker(comm, prob, &opt, owned, full)
		defer w.close()
		for _, li := range w.owned {
			loc := prob.Pattern.Locations[li]
			w.ws.Eng.LossGrad(w.slices, loc.Window(prob.WindowN), prob.Meas[li], w.acc)
		}
		if err := w.runPasses(); err != nil {
			return err
		}
		buffers[comm.Rank()] = w.acc
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mesh.StitchSlices(buffers), buffers, nil
}
