package gradsync

import (
	"math"
	"testing"
	"time"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
	"ptychopath/internal/tiling"
)

const testTimeout = 10 * time.Second

// buildProblem constructs a synthetic problem whose scan footprint and
// overlap ratio are controlled by the caller.
func buildProblem(t testing.TB, scanCols, scanRows int, overlap float64, slices int) (*solver.Problem, *phantom.Object) {
	t.Helper()
	radius := 8.0
	step := scan.StepForOverlap(radius, overlap)
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: scanCols, Rows: scanRows, StepPix: step, RadiusPix: radius, MarginPix: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, slices, 5)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics:  physics.PaperOptics(),
		Pattern: pat,
		Object:  obj,
		WindowN: 16,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob, obj
}

func mesh(t testing.TB, prob *solver.Problem, rows, cols, halo int) *tiling.Mesh {
	t.Helper()
	m, err := tiling.NewMesh(prob.ImageBounds(), rows, cols, halo)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestParallelGradientEqualsSerial is THE correctness theorem of the
// paper's decomposition: the stitched decomposed gradient must equal the
// serial total gradient to machine precision, and every rank's post-pass
// buffer must equal the global gradient restricted to its extended tile.
func TestParallelGradientEqualsSerial(t *testing.T) {
	cases := []struct {
		name    string
		meshR   int
		meshC   int
		overlap float64
		slices  int
		scanC   int
		scanR   int
	}{
		{"1x2-low-overlap", 1, 2, 0.5, 1, 4, 2},
		{"2x2-mid-overlap", 2, 2, 0.7, 2, 4, 4},
		{"3x3-high-overlap", 3, 3, 0.8, 1, 6, 6},
		{"2x3-asymmetric", 2, 3, 0.72, 2, 6, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prob, obj := buildProblem(t, tc.scanC, tc.scanR, tc.overlap, tc.slices)
			// Evaluate gradients at a NON-ground-truth point so they are
			// non-trivial.
			eval := phantom.Vacuum(obj.Bounds(), tc.slices)

			halo := tiling.HaloForWindow(prob.WindowN)
			m := mesh(t, prob, tc.meshR, tc.meshC, halo)

			serial, _ := solver.TotalGradient(prob, eval.Slices, prob.ImageBounds())
			stitched, buffers, err := ParallelGradient(prob, eval.Slices, m, false, testTimeout)
			if err != nil {
				t.Fatal(err)
			}
			scale := 0.0
			for _, g := range serial {
				if v := g.MaxAbs(); v > scale {
					scale = v
				}
			}
			if scale == 0 {
				t.Fatal("serial gradient is identically zero; test is vacuous")
			}
			for s := range serial {
				if d := stitched[s].MaxDiff(serial[s]); d > 1e-9*scale {
					t.Fatalf("slice %d: stitched gradient differs from serial by %g (scale %g)", s, d, scale)
				}
			}
			// Stronger invariant: every rank's buffer equals the global
			// gradient restricted to its extended tile.
			for rank, bufs := range buffers {
				r, c := m.RowCol(rank)
				ext := m.Extended(r, c)
				for s := range bufs {
					want := serial[s].Extract(ext)
					if d := bufs[s].MaxDiff(want); d > 1e-9*scale {
						t.Fatalf("rank %d slice %d: buffer differs from restricted global gradient by %g", rank, s, d)
					}
				}
			}
		})
	}
}

// TestParallelGradientHighOverlapNonAdjacent forces the halo to span
// multiple tiles (the paper's Fig 2(f) regime where probe circles
// overlap non-adjacent tiles) and checks the chained passes still
// produce the exact global gradient.
func TestParallelGradientHighOverlapNonAdjacent(t *testing.T) {
	prob, obj := buildProblem(t, 6, 6, 0.85, 1)
	eval := phantom.Vacuum(obj.Bounds(), 1)
	// A 4x4 mesh over this small image makes tiles ~15 px while the halo
	// is 9 px, so extended tiles overlap diagonal AND distance-2 tiles.
	m := mesh(t, prob, 4, 4, tiling.HaloForWindow(prob.WindowN))
	if m.MaxNeighborDistance() < 2 {
		t.Skip("geometry did not produce non-adjacent overlaps; widen halo")
	}
	serial, _ := solver.TotalGradient(prob, eval.Slices, prob.ImageBounds())
	stitched, _, err := ParallelGradient(prob, eval.Slices, m, false, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	scale := serial[0].MaxAbs()
	if d := stitched[0].MaxDiff(serial[0]); d > 1e-9*scale {
		t.Fatalf("non-adjacent overlap case: gradient differs by %g (scale %g)", d, scale)
	}
}

func TestParallelGradientWithoutAPPPIdenticalResult(t *testing.T) {
	// Disabling APPP changes scheduling, never results.
	prob, obj := buildProblem(t, 4, 4, 0.75, 1)
	eval := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	withAPPP, _, err := ParallelGradient(prob, eval.Slices, m, false, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	without, _, err := ParallelGradient(prob, eval.Slices, m, true, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if withAPPP[0].MaxDiff(without[0]) > 0 {
		t.Fatal("APPP toggle changed numerical results")
	}
}

// TestBatchModeMatchesSerialReconstruction: with one round per iteration
// the parallel batch reconstruction is bit-for-bit (up to FP roundoff)
// the serial batch gradient descent.
func TestBatchModeMatchesSerialReconstruction(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 2)
	init := phantom.Vacuum(obj.Bounds(), 2)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))

	serial, err := solver.Reconstruct(prob, init.Slices, solver.Options{
		StepSize: 0.02, Iterations: 4, Mode: solver.Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 4,
		RoundsPerIteration: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := range serial.Slices {
		scale := serial.Slices[s].MaxAbs()
		if d := par.Slices[s].MaxDiff(serial.Slices[s]); d > 1e-8*scale {
			t.Fatalf("slice %d: parallel reconstruction differs from serial by %g", s, d)
		}
	}
	// Cost histories must match too.
	for i := range serial.CostHistory {
		if math.Abs(par.CostHistory[i]-serial.CostHistory[i]) > 1e-8*(1+serial.CostHistory[i]) {
			t.Fatalf("iteration %d: cost %g vs serial %g", i, par.CostHistory[i], serial.CostHistory[i])
		}
	}
}

func TestFaithfulModeConverges(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeFaithful, StepSize: 0.01, Iterations: 8,
		RoundsPerIteration: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.CostHistory[0], res.CostHistory[len(res.CostHistory)-1]
	if last >= first*0.7 {
		t.Fatalf("faithful mode did not converge: %g -> %g", first, last)
	}
}

func TestMultipleRoundsPerIteration(t *testing.T) {
	// More communication rounds must still converge (Fig 9 regime) and
	// produce finite results.
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	for _, rounds := range []int{1, 2, 4} {
		res, err := Reconstruct(prob, init.Slices, Options{
			Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 4,
			RoundsPerIteration: rounds, Timeout: testTimeout,
		})
		if err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
		for _, sl := range res.Slices {
			if !sl.IsFinite() {
				t.Fatalf("rounds=%d produced non-finite slices", rounds)
			}
		}
		if res.CostHistory[3] >= res.CostHistory[0] {
			t.Fatalf("rounds=%d did not reduce cost: %v", rounds, res.CostHistory)
		}
	}
}

func TestCommunicationVolumeScalesWithRounds(t *testing.T) {
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	run := func(rounds int) int64 {
		res, err := Reconstruct(prob, init.Slices, Options{
			Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 2,
			RoundsPerIteration: rounds, Timeout: testTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.BytesSent
	}
	b1, b4 := run(1), run(4)
	if b4 <= b1 {
		t.Fatalf("4 rounds sent %d bytes, 1 round %d — frequency should cost bytes", b4, b1)
	}
	ratio := float64(b4) / float64(b1)
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("byte ratio %g, want 4 (passes per iteration scale linearly)", ratio)
	}
}

func TestPerRankAccounting(t *testing.T) {
	prob, obj := buildProblem(t, 6, 6, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 3, 3, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalLocs := 0
	for _, n := range res.PerRankLocations {
		totalLocs += n
	}
	if totalLocs != prob.Pattern.N() {
		t.Fatalf("rank location counts sum to %d, want %d", totalLocs, prob.Pattern.N())
	}
	for rank, mem := range res.PerRankMemBytes {
		if mem <= 0 {
			t.Fatalf("rank %d memory estimate %d", rank, mem)
		}
	}
	// Memory must shrink when the mesh grows (the paper's Table II/III
	// trend): compare against a 1x1 mesh.
	m1 := mesh(t, prob, 1, 1, tiling.HaloForWindow(prob.WindowN))
	res1, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m1, Mode: ModeBatch, StepSize: 0.01, Iterations: 1, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRankMemBytes[4] >= res1.PerRankMemBytes[0] {
		t.Fatalf("9-rank tile memory %d not below 1-rank %d",
			res.PerRankMemBytes[4], res1.PerRankMemBytes[0])
	}
}

func TestSingleTileMeshEqualsSerial(t *testing.T) {
	// Degenerate 1x1 mesh must reproduce the serial solver exactly with
	// zero communication.
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 1, 1, 0)
	par, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.02, Iterations: 3, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.BytesSent != 0 || par.MessagesSent != 0 {
		t.Fatalf("1x1 mesh communicated: %d bytes %d msgs", par.BytesSent, par.MessagesSent)
	}
	serial, err := solver.Reconstruct(prob, init.Slices, solver.Options{
		StepSize: 0.02, Iterations: 3, Mode: solver.Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Slices[0].MaxDiff(serial.Slices[0]) > 1e-10 {
		t.Fatal("1x1 mesh deviates from serial")
	}
}

func TestOptionValidation(t *testing.T) {
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, 4)
	cases := []Options{
		{Mesh: nil, StepSize: 1, Iterations: 1},
		{Mesh: m, StepSize: 0, Iterations: 1},
		{Mesh: m, StepSize: 1, Iterations: 0},
		{Mesh: m, StepSize: 1, Iterations: 1, RoundsPerIteration: -1},
	}
	for i, o := range cases {
		o.Timeout = testTimeout
		if _, err := Reconstruct(prob, init.Slices, o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Mismatched mesh image.
	wrong, err := tiling.NewMesh(grid.RectWH(0, 0, 10, 10), 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(prob, init.Slices, Options{
		Mesh: wrong, StepSize: 1, Iterations: 1, Timeout: testTimeout,
	}); err == nil {
		t.Error("mismatched mesh image accepted")
	}
	// Wrong init slice count.
	if _, err := Reconstruct(prob, init.Slices[:0], Options{
		Mesh: m, StepSize: 1, Iterations: 1, Timeout: testTimeout,
	}); err == nil {
		t.Error("wrong init count accepted")
	}
}

func TestOnIterationCallback(t *testing.T) {
	prob, obj := buildProblem(t, 3, 3, 0.6, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	var iters []int
	_, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 3, Timeout: testTimeout,
		OnIteration: func(it int, cost float64) { iters = append(iters, it) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 {
		t.Fatalf("callback fired %d times", len(iters))
	}
}

func TestUnevenLocationDistribution(t *testing.T) {
	// A mesh whose tiles own different location counts must not
	// deadlock (rounds are aligned globally, not per-count).
	prob, obj := buildProblem(t, 5, 3, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 2,
		RoundsPerIteration: 3, Timeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the distribution actually was uneven.
	counts := map[int]bool{}
	for _, n := range res.PerRankLocations {
		counts[n] = true
	}
	if len(counts) < 2 {
		t.Skip("distribution happened to be even; geometry changed?")
	}
}
