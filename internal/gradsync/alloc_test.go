package gradsync

import (
	"testing"

	"ptychopath/internal/phantom"
	"ptychopath/internal/simmpi"
	"ptychopath/internal/tiling"
)

// TestWorkerGradientAllocationFree guards the Gradient Decomposition
// hot path: the per-location body of worker.iteration — zero the
// workspace gradients, evaluate the location, accumulate into AccBuf —
// performs no heap allocations once the worker's arena is warm. Run on
// a 1x1 mesh so no concurrent rank pollutes the process-global
// allocation counter AllocsPerRun reads.
func TestWorkerGradientAllocationFree(t *testing.T) {
	prob, _ := buildProblem(t, 4, 4, 0.6, 2)
	m := mesh(t, prob, 1, 1, tiling.HaloForWindow(prob.WindowN))
	opt := Options{Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 1}
	if err := opt.validate(prob); err != nil {
		t.Fatal(err)
	}
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)
	owned := m.AssignLocations(prob.Pattern)
	var allocs float64
	err := simmpi.Run(1, testTimeout, func(comm *simmpi.Comm) error {
		w := newWorker(comm, prob, &opt, owned, init.Slices)
		defer w.close()
		li := w.owned[0]
		win := prob.Pattern.Locations[li].Window(prob.WindowN)
		w.ws.ZeroGrads()
		w.ws.LossGrad(w.slices, win, prob.Meas[li])
		allocs = testing.AllocsPerRun(10, func() {
			w.ws.ZeroGrads()
			w.ws.LossGrad(w.slices, win, prob.Meas[li])
			for s := range w.acc {
				w.acc[s].AddScaled(w.ws.Grads()[s], 1)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("gradsync per-location kernel allocates %v, want 0", allocs)
	}
}

// TestIntraPoolPersistsAcrossChunks checks the IntraWorkers pool is
// built once per worker and its sub-workspaces are reused: dispatching
// two chunks through the pool allocates nothing after the first.
func TestIntraPoolPersistsAcrossChunks(t *testing.T) {
	prob, _ := buildProblem(t, 4, 4, 0.6, 1)
	m := mesh(t, prob, 1, 1, tiling.HaloForWindow(prob.WindowN))
	opt := Options{Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 1, IntraWorkers: 2}
	if err := opt.validate(prob); err != nil {
		t.Fatal(err)
	}
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)
	owned := m.AssignLocations(prob.Pattern)
	err := simmpi.Run(1, testTimeout, func(comm *simmpi.Comm) error {
		w := newWorker(comm, prob, &opt, owned, init.Slices)
		defer w.close()
		if w.intra == nil || len(w.intra.subs) != 2 {
			t.Errorf("expected a 2-sub persistent pool, got %+v", w.intra)
			return nil
		}
		n := len(w.owned)
		before := w.intra.subs[0].ws
		w.gradientChunkParallel(0, n)
		w.gradientChunkParallel(0, n)
		if w.intra.subs[0].ws != before {
			t.Error("sub-worker workspace was reallocated between chunks")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
