package gradsync

import (
	"sync"
	"testing"
	"time"

	"ptychopath/internal/obs"
	"ptychopath/internal/phantom"
	"ptychopath/internal/simmpi"
	"ptychopath/internal/tiling"
)

// TestOnRankStatsEveryRank: the per-rank stats callback fires on EVERY
// rank once per iteration, with per-iteration deltas whose sums match
// the cumulative totals the result reports.
func TestOnRankStatsEveryRank(t *testing.T) {
	const iters = 4
	prob, obj := buildProblem(t, 4, 4, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(t, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))

	var mu sync.Mutex
	calls := map[int][]int{}   // rank -> iters seen, in order
	sums := map[int][2]int64{} // rank -> summed compute/comm deltas
	res, err := Reconstruct(prob, init.Slices, Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: iters, Timeout: testTimeout,
		OnRankStats: func(rank, iter int, computeNS, commNS int64) {
			mu.Lock()
			calls[rank] = append(calls[rank], iter)
			s := sums[rank]
			sums[rank] = [2]int64{s[0] + computeNS, s[1] + commNS}
			mu.Unlock()
			if computeNS < 0 || commNS < 0 {
				t.Errorf("rank %d iter %d: negative delta (%d, %d)", rank, iter, computeNS, commNS)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		if len(calls[rank]) != iters {
			t.Fatalf("rank %d: %d callbacks, want %d", rank, len(calls[rank]), iters)
		}
		for i, iter := range calls[rank] {
			if iter != i {
				t.Fatalf("rank %d callback %d reported iter %d", rank, i, iter)
			}
		}
		// Deltas sum back to the cumulative totals of the result.
		if sums[rank][0] != res.PerRankComputeNS[rank] {
			t.Fatalf("rank %d compute deltas sum to %d, cumulative is %d",
				rank, sums[rank][0], res.PerRankComputeNS[rank])
		}
		if sums[rank][1] != res.PerRankCommNS[rank] {
			t.Fatalf("rank %d comm deltas sum to %d, cumulative is %d",
				rank, sums[rank][1], res.PerRankCommNS[rank])
		}
	}
}

// TestWorkerGradientAllocationFreeTraced re-runs the hot-path
// allocation guard with the tracing callback INSTALLED: enabling
// observability must not introduce a single allocation into the
// per-location kernel. (The callback itself fires at iteration
// boundaries, never per location — this pins that the option's mere
// presence doesn't change the kernel.)
func TestWorkerGradientAllocationFreeTraced(t *testing.T) {
	prob, _ := buildProblem(t, 4, 4, 0.6, 2)
	m := mesh(t, prob, 1, 1, tiling.HaloForWindow(prob.WindowN))
	tr := obs.NewTrace("alloc-guard")
	opt := Options{
		Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: 1,
		OnRankStats: func(rank, iter int, computeNS, commNS int64) {
			tr.Record("compute", 0, rank, iter, time.Now(), time.Duration(computeNS))
		},
	}
	if err := opt.validate(prob); err != nil {
		t.Fatal(err)
	}
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)
	owned := m.AssignLocations(prob.Pattern)
	var allocs float64
	err := simmpi.Run(1, testTimeout, func(comm *simmpi.Comm) error {
		w := newWorker(comm, prob, &opt, owned, init.Slices)
		defer w.close()
		li := w.owned[0]
		win := prob.Pattern.Locations[li].Window(prob.WindowN)
		w.ws.ZeroGrads()
		w.ws.LossGrad(w.slices, win, prob.Meas[li])
		allocs = testing.AllocsPerRun(10, func() {
			w.ws.ZeroGrads()
			w.ws.LossGrad(w.slices, win, prob.Meas[li])
			for s := range w.acc {
				w.acc[s].AddScaled(w.ws.Grads()[s], 1)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("per-location kernel allocates %v with tracing enabled, want 0", allocs)
	}
}

// BenchmarkIterationTracing measures the tracing overhead on the
// iteration loop: the same 2x2-mesh reconstruction with the per-rank
// stats callback absent ("off") and installed, feeding an obs.Trace
// exactly the way the job service does ("on"). The delta between the
// two is the full observability cost per iteration — the BENCH_ file
// in the repo root records it staying under 2%.
func BenchmarkIterationTracing(b *testing.B) {
	prob, obj := buildProblem(b, 6, 6, 0.7, 1)
	init := phantom.Vacuum(obj.Bounds(), 1)
	m := mesh(b, prob, 2, 2, tiling.HaloForWindow(prob.WindowN))
	const iters = 8

	run := func(b *testing.B, opts func() Options) {
		for i := 0; i < b.N; i++ {
			if _, err := Reconstruct(prob, init.Slices, opts()); err != nil {
				b.Fatal(err)
			}
		}
	}
	base := func() Options {
		return Options{Mesh: m, Mode: ModeBatch, StepSize: 0.01, Iterations: iters, Timeout: testTimeout}
	}
	b.Run("off", func(b *testing.B) { run(b, base) })
	b.Run("on", func(b *testing.B) {
		run(b, func() Options {
			tr := obs.NewTrace("bench")
			root := tr.Begin("job", 0, obs.RankCoordinator, obs.IterNone)
			opt := base()
			opt.OnRankStats = func(rank, iter int, computeNS, commNS int64) {
				end := time.Now()
				commStart := end.Add(-time.Duration(commNS))
				tr.Record("compute", root, rank, iter,
					commStart.Add(-time.Duration(computeNS)), time.Duration(computeNS))
				tr.Record("comm", root, rank, iter, commStart, time.Duration(commNS))
			}
			return opt
		})
	})
}
