// Package solver defines the reconstruction problem container shared by
// every algorithm in the repository and provides the serial reference
// solvers (batch gradient descent and sequential PIE-style updates) that
// the parallel methods are validated against.
package solver

import (
	"fmt"
	"math"
	"math/rand"

	"ptychopath/internal/grid"
	"ptychopath/internal/multislice"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
)

// Problem bundles everything the maximum-likelihood reconstruction of
// Eqn. (1) needs: the scan pattern, measured far-field amplitudes per
// probe location, the probe wavefunction, the inter-slice propagator and
// the model geometry.
type Problem struct {
	Pattern *scan.Pattern
	// Meas[i] is the measured far-field amplitude |y_i| for location i,
	// WindowN x WindowN, origin-anchored.
	Meas []*grid.Float2D
	// Probe is the WindowN x WindowN probe wavefunction.
	Probe *grid.Complex2D
	// Prop is the Fresnel inter-slice propagator (nil disables
	// propagation; single-slice mode).
	Prop *grid.Complex2D
	// WindowN is the probe-window edge in pixels.
	WindowN int
	// Slices is the number of object slices to reconstruct.
	Slices int
}

// Validate reports structural inconsistencies.
func (p *Problem) Validate() error {
	switch {
	case p.Pattern == nil:
		return fmt.Errorf("solver: nil pattern")
	case len(p.Meas) != p.Pattern.N():
		return fmt.Errorf("solver: %d measurements for %d locations", len(p.Meas), p.Pattern.N())
	case p.Probe == nil || p.Probe.W() != p.WindowN || p.Probe.H() != p.WindowN:
		return fmt.Errorf("solver: probe must be %dx%d", p.WindowN, p.WindowN)
	case p.Slices <= 0:
		return fmt.Errorf("solver: slices must be positive, got %d", p.Slices)
	}
	for i, m := range p.Meas {
		if m.W() != p.WindowN || m.H() != p.WindowN {
			return fmt.Errorf("solver: measurement %d is %dx%d, want %dx%d",
				i, m.W(), m.H(), p.WindowN, p.WindowN)
		}
	}
	return nil
}

// AppendLocations grows the problem in place with newly acquired probe
// locations and their measurements — the growable-dataset API of the
// streaming subsystem (internal/stream). Measurements must be
// WindowN x WindowN and location centers must fall inside the image
// extent (the tile meshes assign locations by circle-center
// containment, so a center outside the image would silently belong to
// no rank). On error nothing is appended.
//
// The caller owns concurrency: engines iterate Pattern.Locations and
// Meas by index, so appends are safe exactly at iteration boundaries —
// which is when the streaming engine folds arrivals in.
func (p *Problem) AppendLocations(locs []scan.Location, meas []*grid.Float2D) error {
	if len(locs) != len(meas) {
		return fmt.Errorf("solver: %d locations with %d measurements", len(locs), len(meas))
	}
	if p.Pattern == nil {
		return fmt.Errorf("solver: nil pattern")
	}
	img := p.ImageBounds()
	for i, m := range meas {
		if m == nil || m.W() != p.WindowN || m.H() != p.WindowN {
			return fmt.Errorf("solver: appended measurement %d is not %dx%d", i, p.WindowN, p.WindowN)
		}
		x, y := int(math.Round(locs[i].X)), int(math.Round(locs[i].Y))
		if !img.Contains(x, y) {
			return fmt.Errorf("solver: appended location %d center (%g, %g) outside image %v",
				i, locs[i].X, locs[i].Y, img)
		}
	}
	p.Pattern.Locations = append(p.Pattern.Locations, locs...)
	p.Meas = append(p.Meas, meas...)
	return nil
}

// NewEngine constructs a fresh multislice engine for this problem.
// Engines are not concurrency-safe; each worker makes its own.
func (p *Problem) NewEngine() *multislice.Engine {
	return multislice.NewEngine(p.Probe, p.Prop)
}

// ImageBounds returns the reconstruction extent.
func (p *Problem) ImageBounds() grid.Rect { return p.Pattern.Bounds() }

// SimulateConfig controls synthetic data generation.
type SimulateConfig struct {
	Optics  physics.Optics
	Pattern *scan.Pattern
	Object  *phantom.Object
	WindowN int
	// DoseElectrons, when positive, applies Poisson shot noise with the
	// given mean total electron count per diffraction pattern.
	DoseElectrons float64
	// Seed drives the noise RNG.
	Seed int64
}

// Simulate generates a Problem by pushing the ground-truth object
// through the forward model at every probe location — the synthetic
// counterpart of the paper's simulated PbTiO3 acquisition.
func Simulate(cfg SimulateConfig) (*Problem, error) {
	if cfg.Pattern == nil || cfg.Object == nil {
		return nil, fmt.Errorf("solver: Simulate requires a pattern and object")
	}
	if cfg.WindowN <= 0 {
		return nil, fmt.Errorf("solver: window size must be positive, got %d", cfg.WindowN)
	}
	if err := cfg.Optics.Validate(); err != nil {
		return nil, err
	}
	probe := cfg.Optics.Probe(cfg.WindowN)
	var prop *grid.Complex2D
	if cfg.Object.NumSlices() > 1 {
		prop = physics.FresnelPropagator(cfg.WindowN, cfg.Optics.PixelSizePM,
			cfg.Optics.Wavelength(), cfg.Optics.SliceThickPM)
	}
	eng := multislice.NewEngine(probe, prop)
	meas := make([]*grid.Float2D, cfg.Pattern.N())
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i, l := range cfg.Pattern.Locations {
		amp := eng.Simulate(cfg.Object.Slices, l.Window(cfg.WindowN))
		if cfg.DoseElectrons > 0 {
			applyShotNoise(amp, cfg.DoseElectrons, rng)
		}
		meas[i] = amp
	}
	return &Problem{
		Pattern: cfg.Pattern,
		Meas:    meas,
		Probe:   probe,
		Prop:    prop,
		WindowN: cfg.WindowN,
		Slices:  cfg.Object.NumSlices(),
	}, nil
}

// applyShotNoise converts amplitudes to intensities, scales to the dose,
// draws Poisson counts, and converts back — the standard detector model.
func applyShotNoise(amp *grid.Float2D, dose float64, rng *rand.Rand) {
	var total float64
	for _, a := range amp.Data {
		total += a * a
	}
	if total == 0 {
		return
	}
	scale := dose / total
	for i, a := range amp.Data {
		lambda := a * a * scale
		counts := poisson(lambda, rng)
		amp.Data[i] = math.Sqrt(counts / scale)
	}
}

// poisson draws a Poisson variate; Knuth's method for small lambda, a
// Gaussian approximation for large lambda (adequate for detector noise).
func poisson(lambda float64, rng *rand.Rand) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return math.Round(v)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

// Cost evaluates the full cost F(V) over all probe locations of prob for
// the given object slices.
func Cost(prob *Problem, slices []*grid.Complex2D) float64 {
	eng := prob.NewEngine()
	var f float64
	for i, l := range prob.Pattern.Locations {
		f += eng.Loss(slices, l.Window(prob.WindowN), prob.Meas[i])
	}
	return f
}

// TotalGradient accumulates the full image gradient dF/d(conj t) over
// all locations into freshly allocated arrays with the given bounds —
// the serial ground truth the Gradient Decomposition must reproduce.
func TotalGradient(prob *Problem, slices []*grid.Complex2D, bounds grid.Rect) ([]*grid.Complex2D, float64) {
	ws := prob.NewWorkspace(bounds)
	var f float64
	for i, l := range prob.Pattern.Locations {
		f += ws.LossGrad(slices, l.Window(prob.WindowN), prob.Meas[i])
	}
	return ws.Grads(), f
}
