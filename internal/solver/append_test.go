package solver

import (
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/scan"
)

// emptyClone returns a zero-location problem with prob's geometry —
// what a streaming job opens with before frames arrive.
func emptyClone(prob *Problem) *Problem {
	return &Problem{
		Pattern: &scan.Pattern{
			ImageW: prob.Pattern.ImageW, ImageH: prob.Pattern.ImageH,
			StepPix: prob.Pattern.StepPix, RadiusPix: prob.Pattern.RadiusPix,
		},
		Probe: prob.Probe, Prop: prob.Prop,
		WindowN: prob.WindowN, Slices: prob.Slices,
	}
}

// TestAppendLocationsGrowsToEquivalentProblem: a problem grown
// incrementally from geometry-only reconstructs bit-identically to the
// batch problem it was grown from.
func TestAppendLocationsGrowsToEquivalentProblem(t *testing.T) {
	prob, _ := smallProblem(t, 2, 0)
	grown := emptyClone(prob)
	n := prob.Pattern.N()
	for lo := 0; lo < n; lo += 5 {
		hi := min(lo+5, n)
		if err := grown.AppendLocations(prob.Pattern.Locations[lo:hi], prob.Meas[lo:hi]); err != nil {
			t.Fatalf("append [%d,%d): %v", lo, hi, err)
		}
	}
	if err := grown.Validate(); err != nil {
		t.Fatalf("grown problem invalid: %v", err)
	}
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices
	opt := Options{StepSize: 0.01, Iterations: 5, Mode: Batch}
	want, err := Reconstruct(prob, init, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(grown, init, opt)
	if err != nil {
		t.Fatal(err)
	}
	for s := range want.Slices {
		if md := want.Slices[s].MaxDiff(got.Slices[s]); md != 0 {
			t.Fatalf("slice %d: grown problem differs from batch by %g", s, md)
		}
	}
}

// TestAppendLocationsValidation: malformed appends are rejected whole —
// nothing is partially appended.
func TestAppendLocationsValidation(t *testing.T) {
	prob, _ := smallProblem(t, 1, 0)
	grown := emptyClone(prob)

	loc := prob.Pattern.Locations[0]
	good := prob.Meas[0]

	if err := grown.AppendLocations([]scan.Location{loc}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := grown.AppendLocations([]scan.Location{loc}, []*grid.Float2D{nil}); err == nil {
		t.Error("nil measurement accepted")
	}
	wrong := grid.NewFloat2DSize(prob.WindowN+1, prob.WindowN)
	if err := grown.AppendLocations([]scan.Location{loc}, []*grid.Float2D{wrong}); err == nil {
		t.Error("wrong-sized measurement accepted")
	}
	outside := loc
	outside.X = float64(prob.Pattern.ImageW) + 50
	if err := grown.AppendLocations(
		[]scan.Location{loc, outside},
		[]*grid.Float2D{good, good}); err == nil {
		t.Error("out-of-image center accepted")
	}
	if grown.Pattern.N() != 0 || len(grown.Meas) != 0 {
		t.Fatalf("failed appends left %d locations, %d measurements", grown.Pattern.N(), len(grown.Meas))
	}

	if err := grown.AppendLocations([]scan.Location{loc}, []*grid.Float2D{good}); err != nil {
		t.Fatalf("valid append rejected: %v", err)
	}
	if grown.Pattern.N() != 1 {
		t.Fatalf("appended 1 location, have %d", grown.Pattern.N())
	}
}
