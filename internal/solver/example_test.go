package solver_test

import (
	"fmt"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

// ExampleProblem_AppendLocations shows the growable-dataset API the
// streaming subsystem is built on: a reconstruction problem opened from
// geometry alone grows in place as newly acquired probe locations and
// their measurements arrive.
func ExampleProblem_AppendLocations() {
	// A complete 3x3 acquisition to play the role of the instrument.
	pat, err := scan.Raster(scan.RasterConfig{Cols: 3, Rows: 3, StepPix: 5, RadiusPix: 6, MarginPix: 6})
	if err != nil {
		panic(err)
	}
	acquired, err := solver.Simulate(solver.SimulateConfig{
		Optics:  physics.PaperOptics(),
		Pattern: pat,
		Object:  phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1),
		WindowN: 8,
	})
	if err != nil {
		panic(err)
	}

	// The live problem starts empty — same geometry, zero locations —
	// and folds frames in as they arrive, two at a time here.
	live := &solver.Problem{
		Pattern: &scan.Pattern{
			ImageW: pat.ImageW, ImageH: pat.ImageH,
			StepPix: pat.StepPix, RadiusPix: pat.RadiusPix,
		},
		Probe:   acquired.Probe,
		WindowN: acquired.WindowN,
		Slices:  acquired.Slices,
	}
	for lo := 0; lo < pat.N(); lo += 2 {
		hi := min(lo+2, pat.N())
		var locs []scan.Location
		var meas []*grid.Float2D
		for i := lo; i < hi; i++ {
			locs = append(locs, pat.Locations[i])
			meas = append(meas, acquired.Meas[i])
		}
		if err := live.AppendLocations(locs, meas); err != nil {
			panic(err)
		}
	}
	fmt.Println("locations:", live.Pattern.N())
	fmt.Println("valid:", live.Validate() == nil)

	// A frame landing outside the image is rejected up front — nothing
	// is appended, the dataset stays consistent.
	bad := scan.Location{X: -100, Y: -100}
	err = live.AppendLocations([]scan.Location{bad}, []*grid.Float2D{acquired.Meas[0]})
	fmt.Println("bad frame rejected:", err != nil)
	fmt.Println("locations after reject:", live.Pattern.N())
	// Output:
	// locations: 9
	// valid: true
	// bad frame rejected: true
	// locations after reject: 9
}
