package solver

import (
	"testing"

	"ptychopath/internal/phantom"
)

// TestSerialGradientAllocationFree guards the Serial engine's hot path:
// once the run's single Workspace is warm, evaluating a probe
// location's loss+gradient — the body of every serial iteration —
// performs zero heap allocations.
func TestSerialGradientAllocationFree(t *testing.T) {
	prob, _ := smallProblem(t, 2, 0)
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices)
	ws := prob.NewWorkspace(prob.ImageBounds())
	loc := prob.Pattern.Locations[0]
	win := loc.Window(prob.WindowN)
	ws.LossGrad(init.Slices, win, prob.Meas[0])
	if got := testing.AllocsPerRun(20, func() {
		ws.ZeroGrads()
		ws.LossGrad(init.Slices, win, prob.Meas[0])
	}); got != 0 {
		t.Errorf("serial per-location kernel allocates %v, want 0", got)
	}
}

// TestWorkspaceGradientMatchesEngine checks the Workspace wrapper is a
// pure re-plumbing of Engine.LossGrad — identical loss and gradients.
func TestWorkspaceGradientMatchesEngine(t *testing.T) {
	prob, obj := smallProblem(t, 2, 0)
	bounds := prob.ImageBounds()
	wantGrads, wantF := TotalGradient(prob, obj.Slices, bounds)

	ws := prob.NewWorkspace(bounds)
	var gotF float64
	for i, l := range prob.Pattern.Locations {
		gotF += ws.LossGrad(obj.Slices, l.Window(prob.WindowN), prob.Meas[i])
	}
	if gotF != wantF {
		t.Errorf("workspace loss %g != reference %g", gotF, wantF)
	}
	for s := range wantGrads {
		if md := wantGrads[s].MaxDiff(ws.Grads()[s]); md != 0 {
			t.Errorf("slice %d: workspace gradient differs from reference by %g", s, md)
		}
	}
}
