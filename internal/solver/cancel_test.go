package solver

import (
	"context"
	"errors"
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
)

func cancelTestProblem(t *testing.T) *Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{Cols: 3, Rows: 3, StepPix: 6, RadiusPix: 6, MarginPix: 8})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 3)
	prob, err := Simulate(SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// TestCancelReturnsPartialResult: cancelling at an iteration boundary
// yields the partial slices and history alongside ctx's error, and
// resuming from the partial object reproduces the uninterrupted
// trajectory bit-for-bit.
func TestCancelReturnsPartialResult(t *testing.T) {
	prob := cancelTestProblem(t)
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices
	const cancelAfter, total = 4, 10

	ctx, cancel := context.WithCancel(context.Background())
	partial, err := Reconstruct(prob, init, Options{
		StepSize: 0.01, Iterations: total, Mode: Batch, Ctx: ctx,
		OnIteration: func(iter int, cost float64) {
			if iter+1 == cancelAfter {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil || len(partial.CostHistory) != cancelAfter {
		t.Fatalf("partial result missing or wrong length: %+v", partial)
	}

	resumed, err := Reconstruct(prob, partial.Slices, Options{
		StepSize: 0.01, Iterations: total - cancelAfter, Mode: Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reconstruct(prob, init, Options{StepSize: 0.01, Iterations: total, Mode: Batch})
	if err != nil {
		t.Fatal(err)
	}
	for s := range ref.Slices {
		if d := resumed.Slices[s].MaxDiff(ref.Slices[s]); d != 0 {
			t.Fatalf("slice %d: resumed differs from uninterrupted by %g", s, d)
		}
	}
}

// TestSnapshotHook: OnSnapshot fires at the period and a snapshot error
// aborts the run.
func TestSnapshotHook(t *testing.T) {
	prob := cancelTestProblem(t)
	init := phantom.Vacuum(prob.ImageBounds(), prob.Slices).Slices

	var iters []int
	if _, err := Reconstruct(prob, init, Options{
		StepSize: 0.01, Iterations: 5, Mode: Batch, SnapshotEvery: 2,
		OnSnapshot: func(iter int, slices []*grid.Complex2D) error {
			iters = append(iters, iter)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 || iters[0] != 1 || iters[1] != 3 {
		t.Fatalf("snapshot iterations %v, want [1 3]", iters)
	}

	boom := errors.New("spool unwritable")
	if _, err := Reconstruct(prob, init, Options{
		StepSize: 0.01, Iterations: 5, Mode: Batch, SnapshotEvery: 1,
		OnSnapshot: func(int, []*grid.Complex2D) error { return boom },
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want snapshot error", err)
	}
}
