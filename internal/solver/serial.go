package solver

import (
	"context"
	"fmt"

	"ptychopath/internal/grid"
)

// UpdateMode selects between batch gradient descent (all gradients
// accumulated, one update per iteration) and sequential location-wise
// updates (PIE-style SGD, the mode Alg. 1 of the paper uses locally).
type UpdateMode int

const (
	// Batch accumulates the full gradient before updating — the
	// mathematical reference the parallel decomposition must match
	// exactly.
	Batch UpdateMode = iota
	// Sequential updates the object after every probe location in
	// acquisition order.
	Sequential
)

// Options configures the serial solvers.
type Options struct {
	StepSize   float64
	Iterations int
	Mode       UpdateMode
	// ProbeStepSize, when positive, enables joint object-probe
	// refinement: the probe wavefunction is descended alongside the
	// object (aberration/defect correction, paper Sec. II-B). The probe
	// update is normalized — each update moves the probe by at most
	// ProbeStepSize of its own peak magnitude along the gradient
	// direction — because the raw probe gradient carries an N^2 factor
	// from the detector-plane adjoint and would otherwise need
	// unintuitive ~1e-6 steps. Typical values: 0.02-0.1. The refined
	// probe is returned in Result.RefinedProbe.
	ProbeStepSize float64
	// StopBelowCost, when positive, ends the run early once the
	// iteration cost falls below it.
	StopBelowCost float64
	// OnIteration, when non-nil, receives the iteration index and the
	// cost F(V) measured during that iteration's gradient evaluations.
	OnIteration func(iter int, cost float64)
	// Ctx, when non-nil, cancels the run at iteration boundaries: once
	// Ctx is done, Reconstruct stops after the current iteration and
	// returns the PARTIAL Result (slices and cost history so far)
	// together with Ctx's error, so callers can checkpoint the
	// in-progress object.
	Ctx context.Context
	// SnapshotEvery, together with OnSnapshot, emits periodic object
	// snapshots: after every SnapshotEvery-th iteration OnSnapshot
	// receives the 0-based iteration index and the current slices. The
	// slices are the solver's live buffers, valid only for the duration
	// of the call — copy (or serialize) to retain. A non-nil error
	// aborts the run.
	SnapshotEvery int
	OnSnapshot    func(iter int, slices []*grid.Complex2D) error
}

// Result carries the reconstruction and its convergence trace.
type Result struct {
	Slices      []*grid.Complex2D
	CostHistory []float64
	// RefinedProbe holds the jointly-refined probe when
	// Options.ProbeStepSize was set (nil otherwise).
	RefinedProbe *grid.Complex2D
}

// Reconstruct runs serial maximum-likelihood gradient descent from the
// given initial slices (copied, not mutated). It is the single-GPU
// reference implementation of the paper's Eqn. (1).
func Reconstruct(prob *Problem, init []*grid.Complex2D, opt Options) (*Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if len(init) != prob.Slices {
		return nil, fmt.Errorf("solver: %d initial slices, want %d", len(init), prob.Slices)
	}
	if opt.StepSize <= 0 {
		return nil, fmt.Errorf("solver: step size must be positive, got %g", opt.StepSize)
	}
	if opt.Iterations <= 0 {
		return nil, fmt.Errorf("solver: iterations must be positive, got %d", opt.Iterations)
	}
	if opt.ProbeStepSize < 0 {
		return nil, fmt.Errorf("solver: probe step size must be non-negative, got %g", opt.ProbeStepSize)
	}
	slices := make([]*grid.Complex2D, len(init))
	for i, s := range init {
		slices[i] = s.Clone()
	}
	// One Workspace for the whole run: the engine's wavefield buffers,
	// FFT scratch and the gradient arrays are allocated here once and
	// reused by every probe location of every iteration.
	ws := prob.NewWorkspace(slices[0].Bounds)
	eng := ws.Eng
	grads := ws.Grads()
	step := complex(opt.StepSize, 0)
	hist := make([]float64, 0, opt.Iterations)

	refineProbe := opt.ProbeStepSize > 0
	var probe, probeGrad *grid.Complex2D
	var probeStep complex128
	if refineProbe {
		probe = eng.Probe().Clone()
		probeGrad = grid.NewComplex2D(probe.Bounds)
		probeStep = complex(opt.ProbeStepSize, 0)
	}
	lossGrad := func(i int, win grid.Rect) float64 {
		if refineProbe {
			return eng.LossGradProbe(slices, win, prob.Meas[i], grads, probeGrad)
		}
		return eng.LossGrad(slices, win, prob.Meas[i], grads)
	}
	// The probe step is auto-scaled once, from the first gradient: the
	// first update moves the probe peak by ProbeStepSize x its own
	// magnitude, and subsequent updates use the same fixed scale so the
	// step decays with the gradient (plain GD semantics, calibrated
	// units). Without this the raw probe gradient (which carries an N^2
	// detector-plane factor) needs ~1e-6 steps.
	probeScale := complex(0, 0)
	applyProbe := func() {
		if !refineProbe {
			return
		}
		if probeScale == 0 {
			if gMax := probeGrad.MaxAbs(); gMax > 0 {
				probeScale = probeStep * complex(probe.MaxAbs()/gMax, 0)
			}
		}
		probe.AddScaled(probeGrad, -probeScale)
		probeGrad.Zero()
		eng.SetProbe(probe)
	}

	for iter := 0; iter < opt.Iterations; iter++ {
		var cost float64
		switch opt.Mode {
		case Batch:
			for _, g := range grads {
				g.Zero()
			}
			for i, l := range prob.Pattern.Locations {
				cost += lossGrad(i, l.Window(prob.WindowN))
			}
			for s := range slices {
				slices[s].AddScaled(grads[s], -step)
			}
			applyProbe()
		case Sequential:
			for i, l := range prob.Pattern.Locations {
				for _, g := range grads {
					g.Zero()
				}
				cost += lossGrad(i, l.Window(prob.WindowN))
				for s := range slices {
					slices[s].AddScaled(grads[s], -step)
				}
				applyProbe()
			}
		default:
			return nil, fmt.Errorf("solver: unknown update mode %d", opt.Mode)
		}
		hist = append(hist, cost)
		if opt.OnIteration != nil {
			opt.OnIteration(iter, cost)
		}
		if opt.SnapshotEvery > 0 && opt.OnSnapshot != nil && (iter+1)%opt.SnapshotEvery == 0 {
			if err := opt.OnSnapshot(iter, slices); err != nil {
				return nil, fmt.Errorf("solver: snapshot at iteration %d: %w", iter, err)
			}
		}
		if opt.StopBelowCost > 0 && cost < opt.StopBelowCost {
			break
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			res := &Result{Slices: slices, CostHistory: hist}
			if refineProbe {
				res.RefinedProbe = probe
			}
			return res, opt.Ctx.Err()
		}
	}
	res := &Result{Slices: slices, CostHistory: hist}
	if refineProbe {
		res.RefinedProbe = probe
	}
	return res, nil
}
