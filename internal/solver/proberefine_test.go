package solver

import (
	"math"
	"testing"

	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
)

// aberratedProblem simulates data with the TRUE probe but hands the
// solver a problem whose probe carries extra defocus — the
// aberration-correction scenario of the paper's Sec. II-B.
func aberratedProblem(t *testing.T) (*Problem, *phantom.Object) {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: 4, Rows: 4, StepPix: 6, RadiusPix: 8, MarginPix: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 31)
	prob, err := Simulate(SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the solver's probe: 40% extra defocus.
	wrong := physics.PaperOptics()
	wrong.DefocusPM *= 1.4
	prob.Probe = wrong.Probe(prob.WindowN)
	return prob, obj
}

func TestProbeRefinementImprovesAberratedReconstruction(t *testing.T) {
	prob, obj := aberratedProblem(t)
	init := phantom.Vacuum(obj.Bounds(), 1)

	fixed, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 40, Mode: Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 40, Mode: Batch, ProbeStepSize: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := len(fixed.CostHistory) - 1
	if math.IsNaN(refined.CostHistory[last]) {
		t.Fatal("probe refinement diverged")
	}
	// With an aberrated probe, joint refinement must reach a better
	// data fit than the fixed wrong probe.
	if refined.CostHistory[last] >= 0.95*fixed.CostHistory[last] {
		t.Fatalf("probe refinement did not help: refined %g vs fixed %g",
			refined.CostHistory[last], fixed.CostHistory[last])
	}
	if refined.RefinedProbe == nil {
		t.Fatal("refined probe missing from result")
	}
	if fixed.RefinedProbe != nil {
		t.Fatal("fixed-probe run must not return a refined probe")
	}
	// The refined probe moved away from the wrong initial probe.
	if refined.RefinedProbe.MaxDiff(prob.Probe) == 0 {
		t.Fatal("probe did not move")
	}
}

func TestProbeRefinementSequentialMode(t *testing.T) {
	prob, obj := aberratedProblem(t)
	init := phantom.Vacuum(obj.Bounds(), 1)
	res, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.01, Iterations: 8, Mode: Sequential, ProbeStepSize: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostHistory[7] >= res.CostHistory[0] {
		t.Fatalf("sequential probe refinement diverged: %v", res.CostHistory)
	}
	if res.RefinedProbe == nil || !res.RefinedProbe.IsFinite() {
		t.Fatal("refined probe invalid")
	}
}

func TestProbeRefinementDoesNotMutateProblemProbe(t *testing.T) {
	prob, obj := aberratedProblem(t)
	init := phantom.Vacuum(obj.Bounds(), 1)
	before := prob.Probe.Clone()
	if _, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 3, Mode: Batch, ProbeStepSize: 0.02,
	}); err != nil {
		t.Fatal(err)
	}
	if prob.Probe.MaxDiff(before) != 0 {
		t.Fatal("Reconstruct mutated the problem's probe")
	}
}

func TestNegativeProbeStepRejected(t *testing.T) {
	prob, obj := aberratedProblem(t)
	init := phantom.Vacuum(obj.Bounds(), 1)
	if _, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 1, ProbeStepSize: -1,
	}); err == nil {
		t.Fatal("negative probe step accepted")
	}
}

func TestExactProbeRefinementStaysNearOptimum(t *testing.T) {
	// With the CORRECT probe and the true object, enabling refinement
	// must keep cost ~0 (the gradient at the optimum is ~0).
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: 3, Rows: 3, StepPix: 6, RadiusPix: 8, MarginPix: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 33)
	prob, err := Simulate(SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 16, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reconstruct(prob, obj.Slices, Options{
		StepSize: 0.01, Iterations: 3, Mode: Batch, ProbeStepSize: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.CostHistory {
		if c > 1e-12 {
			t.Fatalf("cost left the optimum: %v", res.CostHistory)
		}
	}
}
