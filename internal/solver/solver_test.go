package solver

import (
	"math"
	"testing"

	"ptychopath/internal/grid"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
)

// smallProblem generates a compact synthetic problem for solver tests.
func smallProblem(t testing.TB, slices int, noise float64) (*Problem, *phantom.Object) {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{
		Cols: 4, Rows: 4, StepPix: 6, RadiusPix: 8, MarginPix: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, slices, 3)
	prob, err := Simulate(SimulateConfig{
		Optics:        physics.PaperOptics(),
		Pattern:       pat,
		Object:        obj,
		WindowN:       16,
		DoseElectrons: noise,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob, obj
}

func TestSimulateProducesValidProblem(t *testing.T) {
	prob, obj := smallProblem(t, 2, 0)
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	if prob.Slices != 2 || len(prob.Meas) != 16 {
		t.Fatalf("slices=%d meas=%d", prob.Slices, len(prob.Meas))
	}
	// Noise-free cost at ground truth must be ~0.
	if f := Cost(prob, obj.Slices); f > 1e-15 {
		t.Fatalf("cost at truth = %g", f)
	}
}

func TestSimulateSingleSliceHasNoPropagator(t *testing.T) {
	prob, _ := smallProblem(t, 1, 0)
	if prob.Prop != nil {
		t.Fatal("single-slice problems must not build a propagator")
	}
}

func TestSimulateValidation(t *testing.T) {
	pat, _ := scan.Raster(scan.RasterConfig{Cols: 2, Rows: 2, StepPix: 4, RadiusPix: 4})
	obj := phantom.RandomObject(16, 16, 1, 1)
	if _, err := Simulate(SimulateConfig{Pattern: nil, Object: obj, WindowN: 8, Optics: physics.PaperOptics()}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := Simulate(SimulateConfig{Pattern: pat, Object: obj, WindowN: 0, Optics: physics.PaperOptics()}); err == nil {
		t.Error("zero window accepted")
	}
	bad := physics.PaperOptics()
	bad.EnergyEV = -1
	if _, err := Simulate(SimulateConfig{Pattern: pat, Object: obj, WindowN: 8, Optics: bad}); err == nil {
		t.Error("invalid optics accepted")
	}
}

func TestShotNoisePerturbsButPreservesScale(t *testing.T) {
	clean, _ := smallProblem(t, 1, 0)
	noisy, _ := smallProblem(t, 1, 1e6)
	var cleanE, noisyE, diff float64
	for i := range clean.Meas {
		for j := range clean.Meas[i].Data {
			c, n := clean.Meas[i].Data[j], noisy.Meas[i].Data[j]
			cleanE += c * c
			noisyE += n * n
			diff += (c - n) * (c - n)
		}
	}
	if diff == 0 {
		t.Fatal("noise had no effect")
	}
	if math.Abs(noisyE-cleanE) > 0.05*cleanE {
		t.Fatalf("noise broke energy scale: clean %g noisy %g", cleanE, noisyE)
	}
}

func TestBatchGradientDescentReducesCost(t *testing.T) {
	prob, obj := smallProblem(t, 1, 0)
	init := phantom.Vacuum(obj.Bounds(), 1)
	res, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 12, Mode: Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostHistory) != 12 {
		t.Fatalf("history length %d", len(res.CostHistory))
	}
	first, last := res.CostHistory[0], res.CostHistory[len(res.CostHistory)-1]
	if last >= first {
		t.Fatalf("cost did not decrease: %g -> %g", first, last)
	}
	if last > 0.5*first {
		t.Fatalf("cost decreased too little: %g -> %g", first, last)
	}
}

func TestSequentialConvergesFasterPerIteration(t *testing.T) {
	// PIE-style sequential updates usually beat batch per iteration on
	// clean data; at minimum they must converge.
	prob, obj := smallProblem(t, 1, 0)
	init := phantom.Vacuum(obj.Bounds(), 1)
	seq, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 8, Mode: Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.CostHistory[7] >= seq.CostHistory[0] {
		t.Fatalf("sequential cost did not decrease: %v", seq.CostHistory)
	}
}

func TestMultiSliceReconstructionConverges(t *testing.T) {
	prob, obj := smallProblem(t, 2, 0)
	init := phantom.Vacuum(obj.Bounds(), 2)
	res, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 10, Mode: Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostHistory[9] >= res.CostHistory[0]*0.8 {
		t.Fatalf("multi-slice did not converge: %v", res.CostHistory)
	}
}

func TestReconstructDoesNotMutateInit(t *testing.T) {
	prob, obj := smallProblem(t, 1, 0)
	init := phantom.Vacuum(obj.Bounds(), 1)
	before := init.Slices[0].Clone()
	if _, err := Reconstruct(prob, init.Slices, Options{StepSize: 0.05, Iterations: 2, Mode: Batch}); err != nil {
		t.Fatal(err)
	}
	if init.Slices[0].MaxDiff(before) > 0 {
		t.Fatal("Reconstruct mutated its initial guess")
	}
}

func TestReconstructOptionValidation(t *testing.T) {
	prob, obj := smallProblem(t, 1, 0)
	init := phantom.Vacuum(obj.Bounds(), 1)
	if _, err := Reconstruct(prob, init.Slices, Options{StepSize: 0, Iterations: 1}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Reconstruct(prob, init.Slices, Options{StepSize: 1, Iterations: 0}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Reconstruct(prob, init.Slices[:0], Options{StepSize: 1, Iterations: 1}); err == nil {
		t.Error("slice count mismatch accepted")
	}
	if _, err := Reconstruct(prob, init.Slices, Options{StepSize: 1, Iterations: 1, Mode: UpdateMode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestOnIterationCallback(t *testing.T) {
	prob, obj := smallProblem(t, 1, 0)
	init := phantom.Vacuum(obj.Bounds(), 1)
	var calls []int
	_, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 3, Mode: Batch,
		OnIteration: func(it int, cost float64) { calls = append(calls, it) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 || calls[0] != 0 || calls[2] != 2 {
		t.Fatalf("callback calls: %v", calls)
	}
}

func TestTotalGradientMatchesPerLocationSum(t *testing.T) {
	prob, obj := smallProblem(t, 2, 0)
	slices := phantom.Vacuum(obj.Bounds(), 2).Slices
	grads, cost := TotalGradient(prob, slices, obj.Bounds())
	if cost <= 0 {
		t.Fatal("cost at vacuum must be positive")
	}
	// Manual accumulation must agree.
	eng := prob.NewEngine()
	manual := []*grid.Complex2D{grid.NewComplex2D(obj.Bounds()), grid.NewComplex2D(obj.Bounds())}
	for i, l := range prob.Pattern.Locations {
		eng.LossGrad(slices, l.Window(prob.WindowN), prob.Meas[i], manual)
	}
	for s := range grads {
		if grads[s].MaxDiff(manual[s]) > 1e-12 {
			t.Fatal("TotalGradient disagrees with manual accumulation")
		}
	}
}

func TestValidateCatchesBadMeasurements(t *testing.T) {
	prob, _ := smallProblem(t, 1, 0)
	prob.Meas[3] = grid.NewFloat2DSize(4, 4)
	if err := prob.Validate(); err == nil {
		t.Fatal("wrong measurement shape accepted")
	}
}

func TestSerialStopBelowCost(t *testing.T) {
	prob, obj := smallProblem(t, 1, 0)
	init := phantom.Vacuum(obj.Bounds(), 1)
	full, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 12, Mode: Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	mid := full.CostHistory[len(full.CostHistory)/2]
	stopped, err := Reconstruct(prob, init.Slices, Options{
		StepSize: 0.02, Iterations: 12, Mode: Batch, StopBelowCost: mid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stopped.CostHistory) >= len(full.CostHistory) {
		t.Fatal("early stop did not trigger")
	}
	if stopped.CostHistory[len(stopped.CostHistory)-1] >= mid {
		t.Fatal("stopped above threshold")
	}
}
