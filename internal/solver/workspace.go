package solver

import (
	"ptychopath/internal/grid"
	"ptychopath/internal/multislice"
)

// Workspace is the per-worker scratch arena of the gradient hot path.
// It bundles everything one reconstruction worker (the stand-in for one
// GPU) needs to evaluate per-location gradients without touching the
// heap: a multislice engine (probe/exit-wave/chi buffers plus FFT
// scratch) and one gradient accumulation array per object slice sized
// to the worker's bounds. All three engines — Serial, Gradient
// Decomposition and Halo Voxel Exchange — build exactly one Workspace
// per worker and reuse it for the whole run, which is what makes their
// steady-state gradient kernels allocation-free.
//
// A Workspace is NOT safe for concurrent use; concurrent workers (for
// example the IntraWorkers goroutine pool in gradsync) each own one.
type Workspace struct {
	// Eng is the wavefield engine; shared scratch for forward model and
	// adjoint.
	Eng *multislice.Engine

	bounds grid.Rect
	slices int
	grads  []*grid.Complex2D // built on first Grads() call
}

// NewWorkspace builds the per-worker arena for this problem with
// gradient arrays covering bounds (the full image for the serial
// solver, the extended tile for parallel workers). The gradient arrays
// materialize on first use, so callers that only need the engine — the
// gradsync tiny-chunk fallback and ParallelGradient accumulate straight
// into their own buffers — pay nothing for them.
func (p *Problem) NewWorkspace(bounds grid.Rect) *Workspace {
	return &Workspace{Eng: p.NewEngine(), bounds: bounds, slices: p.Slices}
}

// Grads returns the per-slice gradient scratch arrays (one per object
// slice, covering the workspace bounds), building them on first call.
// LossGrad accumulates into them; callers drain them into their
// algorithm state and call ZeroGrads.
func (ws *Workspace) Grads() []*grid.Complex2D {
	if ws.grads == nil {
		ws.grads = make([]*grid.Complex2D, ws.slices)
		for i := range ws.grads {
			ws.grads[i] = grid.NewComplex2D(ws.bounds)
		}
	}
	return ws.grads
}

// ZeroGrads clears the gradient scratch arrays in place.
func (ws *Workspace) ZeroGrads() {
	for _, g := range ws.Grads() {
		g.Zero()
	}
}

// LossGrad evaluates one probe location, accumulating the Wirtinger
// gradient into the workspace arrays, and returns the loss — the
// allocation-free per-location kernel.
func (ws *Workspace) LossGrad(slices []*grid.Complex2D, win grid.Rect, yAmp *grid.Float2D) float64 {
	return ws.Eng.LossGrad(slices, win, yAmp, ws.Grads())
}
