package des

import (
	"errors"
	"math"
	"testing"
)

func noCost(int, int, int64) float64 { return 0 }

func TestComputeAccounting(t *testing.T) {
	stats, makespan, err := Simulate(3, noCost, func(e *Env) error {
		e.Compute(float64(e.Rank()+1) * 2.0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		want := float64(r+1) * 2
		if s.Compute != want || s.Wait != 0 || s.Comm != 0 {
			t.Fatalf("rank %d stats %+v, want compute %g", r, s, want)
		}
	}
	if makespan != 6 {
		t.Fatalf("makespan %g, want 6", makespan)
	}
}

func TestSendRecvTimingAndWaitAccounting(t *testing.T) {
	// Rank 0 computes 5s then sends; rank 1 recvs immediately.
	// Transfer takes 2s. Rank 1 must wait 5s (producer) + 2s (comm).
	transfer := func(src, dst int, bytes int64) float64 { return 2 }
	stats, makespan, err := Simulate(2, transfer, func(e *Env) error {
		if e.Rank() == 0 {
			e.Compute(5)
			e.Send(1, 0, 100)
		} else {
			e.Recv(0, 0)
			if e.Now() != 7 {
				t.Errorf("receiver clock %g, want 7", e.Now())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].Wait != 5 || stats[1].Comm != 2 {
		t.Fatalf("receiver stats %+v, want wait 5 comm 2", stats[1])
	}
	if makespan != 7 {
		t.Fatalf("makespan %g", makespan)
	}
}

func TestLateReceiverPaysNothing(t *testing.T) {
	// The receiver shows up long after arrival: no wait, no comm.
	transfer := func(int, int, int64) float64 { return 1 }
	stats, _, err := Simulate(2, transfer, func(e *Env) error {
		if e.Rank() == 0 {
			e.Send(1, 0, 8)
		} else {
			e.Compute(10)
			e.Recv(0, 0)
			if e.Now() != 10 {
				t.Errorf("late receiver clock %g, want 10", e.Now())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].Wait != 0 || stats[1].Comm != 0 {
		t.Fatalf("late receiver stats %+v", stats[1])
	}
}

func TestPartialOverlapChargesOnlyRemainder(t *testing.T) {
	// Transfer 4s issued at t=0; receiver arrives at t=3: comm = 1s.
	transfer := func(int, int, int64) float64 { return 4 }
	stats, _, err := Simulate(2, transfer, func(e *Env) error {
		if e.Rank() == 0 {
			e.Send(1, 0, 8)
		} else {
			e.Compute(3)
			e.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].Comm != 1 || stats[1].Wait != 0 {
		t.Fatalf("stats %+v, want comm 1", stats[1])
	}
}

func TestChainPipelining(t *testing.T) {
	// 4-rank chain: each computes 1s, then forwards. Rank 3 finishes at
	// 1 (own compute) + 3 hops... with per-hop transfer 0.5 and
	// sends issued after local compute, the chain is:
	// r0 sends at 1; r1 recv at max(1, 1)+0.5 -> 1.5... compute done at
	// 1 so receives at 1.5, sends at 1.5; r2 at 2.0 sends; r3 at 2.5.
	transfer := func(int, int, int64) float64 { return 0.5 }
	_, makespan, err := Simulate(4, transfer, func(e *Env) error {
		e.Compute(1)
		if e.Rank() > 0 {
			e.Recv(e.Rank()-1, 7)
		}
		if e.Rank() < e.Size()-1 {
			e.Send(e.Rank()+1, 7, 10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(makespan-2.5) > 1e-12 {
		t.Fatalf("chain makespan %g, want 2.5", makespan)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	stats, makespan, err := Simulate(3, noCost, func(e *Env) error {
		e.Compute(float64(e.Rank()) * 3) // 0, 3, 6
		e.Barrier()
		if e.Now() != 6 {
			t.Errorf("rank %d clock after barrier %g, want 6", e.Rank(), e.Now())
		}
		e.Compute(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 7 {
		t.Fatalf("makespan %g, want 7", makespan)
	}
	if stats[0].Wait != 6 || stats[2].Wait != 0 {
		t.Fatalf("barrier wait accounting: %+v / %+v", stats[0], stats[2])
	}
}

func TestRepeatedBarriers(t *testing.T) {
	_, makespan, err := Simulate(4, noCost, func(e *Env) error {
		for i := 0; i < 5; i++ {
			e.Compute(1)
			e.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 5 {
		t.Fatalf("makespan %g, want 5", makespan)
	}
}

func TestChargeComm(t *testing.T) {
	stats, _, err := Simulate(1, noCost, func(e *Env) error {
		e.Compute(2)
		e.ChargeComm(3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Compute != 2 || stats[0].Comm != 3 {
		t.Fatalf("stats %+v", stats[0])
	}
	if stats[0].Total() != 5 {
		t.Fatalf("total %g", stats[0].Total())
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, _, err := Simulate(2, noCost, func(e *Env) error {
		e.Recv(1-e.Rank(), 0) // both wait, nobody sends
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestPartialBarrierDeadlock(t *testing.T) {
	_, _, err := Simulate(2, noCost, func(e *Env) error {
		if e.Rank() == 0 {
			e.Barrier()
		} else {
			e.Recv(0, 9)
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := Simulate(2, noCost, func(e *Env) error {
		if e.Rank() == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	_, _, err := Simulate(2, noCost, func(e *Env) error {
		if e.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic must surface as error")
	}
}

func TestTagSelectivity(t *testing.T) {
	// Receiver takes tag 2 before tag 1 even though both are queued.
	order := make([]int, 0, 2)
	_, _, err := Simulate(2, noCost, func(e *Env) error {
		if e.Rank() == 0 {
			e.Send(1, 1, 10)
			e.Send(1, 2, 10)
		} else {
			e.Recv(0, 2)
			order = append(order, 2)
			e.Recv(0, 1)
			order = append(order, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("order %v", order)
	}
}

func TestBytesDependentTransfer(t *testing.T) {
	transfer := func(src, dst int, bytes int64) float64 {
		return 0.001 + float64(bytes)/1e9 // 1ms latency + 1GB/s
	}
	stats, _, err := Simulate(2, transfer, func(e *Env) error {
		if e.Rank() == 0 {
			e.Send(1, 0, 1e9)
		} else {
			e.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats[1].Comm-1.001) > 1e-9 {
		t.Fatalf("comm %g, want 1.001", stats[1].Comm)
	}
}

func TestManyRanksMeshExchange(t *testing.T) {
	// 16 ranks in a ring exchange both directions for several rounds —
	// a stress test for scheduler determinism and deadlock-freedom.
	const n = 16
	transfer := func(int, int, int64) float64 { return 0.01 }
	stats, makespan, err := Simulate(n, transfer, func(e *Env) error {
		next := (e.Rank() + 1) % n
		prev := (e.Rank() + n - 1) % n
		for round := 0; round < 10; round++ {
			e.Compute(0.1)
			e.Send(next, round*2, 1000)
			e.Send(prev, round*2+1, 1000)
			e.Recv(prev, round*2)
			e.Recv(next, round*2+1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if makespan < 1.0 {
		t.Fatalf("makespan %g too small", makespan)
	}
	for r, s := range stats {
		if math.Abs(s.Compute-1.0) > 1e-12 {
			t.Fatalf("rank %d compute %g, want 1.0", r, s.Compute)
		}
	}
}

func TestInvalidWorldSize(t *testing.T) {
	if _, _, err := Simulate(0, noCost, func(e *Env) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]Stats, float64) {
		transfer := func(src, dst int, bytes int64) float64 { return 0.001 * float64(1+src%3) }
		stats, mk, err := Simulate(9, transfer, func(e *Env) error {
			r, c := e.Rank()/3, e.Rank()%3
			e.Compute(0.5 + 0.1*float64(e.Rank()))
			if r > 0 {
				e.Recv((r-1)*3+c, 1)
			}
			if r < 2 {
				e.Send((r+1)*3+c, 1, 5000)
			}
			e.Barrier()
			if c > 0 {
				e.Recv(r*3+c-1, 2)
			}
			if c < 2 {
				e.Send(r*3+c+1, 2, 5000)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, mk
	}
	s1, m1 := run()
	s2, m2 := run()
	if m1 != m2 {
		t.Fatalf("makespan nondeterministic: %g vs %g", m1, m2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("rank %d stats differ across runs", i)
		}
	}
}
