// Package des is a conservative discrete-event simulator for
// message-passing programs. Each simulated rank runs as a goroutine that
// the scheduler resumes one at a time in virtual-time order, so programs
// are written in ordinary sequential style (Compute / Send / Recv /
// Barrier) while the engine tracks a global virtual clock, models
// message transfer latency through a caller-supplied cost function, and
// accounts each rank's time into compute, wait (blocked on data that has
// not been produced) and comm (blocked on data in flight).
//
// The paper-scale experiments use this engine to replay the Gradient
// Decomposition and Halo Voxel Exchange schedules on a simulated Summit
// (4158 GPUs) that obviously cannot be reproduced physically — the
// substitution DESIGN.md documents.
package des

import (
	"errors"
	"fmt"
	"sort"
)

// Stats aggregates one rank's virtual time by category.
type Stats struct {
	Compute float64 // time spent in Compute calls
	Wait    float64 // blocked waiting for a message not yet sent / barrier
	Comm    float64 // blocked on in-flight transfer, plus explicit comm charges
}

// Total returns the sum of all categories.
func (s Stats) Total() float64 { return s.Compute + s.Wait + s.Comm }

// TransferFunc returns the in-flight duration of a message of the given
// size between two ranks (latency + bytes/bandwidth in a typical model).
type TransferFunc func(src, dst int, bytes int64) float64

// ErrDeadlock is returned when every unfinished rank is blocked and no
// message or wakeup can release any of them.
var ErrDeadlock = errors.New("des: deadlock — all ranks blocked with no pending events")

type message struct {
	src, tag int
	sentAt   float64
	arrival  float64
	bytes    int64
}

type reqKind int

const (
	reqNone reqKind = iota
	reqCompute
	reqRecv
	reqBarrier
	reqDone
)

type request struct {
	kind  reqKind
	dt    float64 // compute duration
	src   int     // recv source
	tag   int     // recv tag
	chrg  int     // charge category for compute: 0 compute, 1 comm
}

type proc struct {
	id      int
	now     float64
	stats   Stats
	mailbox []message
	req     request
	resume  chan struct{}
	yield   chan request
	blocked bool
	done    bool
	err     error
}

// Env is the per-rank handle passed to the program.
type Env struct {
	p   *proc
	sim *sim
}

// Rank returns this rank's id.
func (e *Env) Rank() int { return e.p.id }

// Size returns the world size.
func (e *Env) Size() int { return len(e.sim.procs) }

// Now returns the rank's local virtual time.
func (e *Env) Now() float64 { return e.p.now }

// Stats returns a snapshot of the rank's accounting so far.
func (e *Env) Stats() Stats { return e.p.stats }

// Compute advances the rank's clock by dt seconds, accounted as compute.
func (e *Env) Compute(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("des: negative compute %g", dt))
	}
	e.p.yield <- request{kind: reqCompute, dt: dt}
	<-e.p.resume
}

// ChargeComm advances the rank's clock by dt seconds accounted as
// communication — used for modeled collectives (e.g. the all-reduce the
// paper replaces with APPP).
func (e *Env) ChargeComm(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("des: negative comm %g", dt))
	}
	e.p.yield <- request{kind: reqCompute, dt: dt, chrg: 1}
	<-e.p.resume
}

// Send transmits bytes to dst with the given tag. Non-blocking
// (asynchronous isend): the sender's clock does not advance; arrival is
// now + TransferFunc(...).
func (e *Env) Send(dst, tag int, bytes int64) {
	if dst < 0 || dst >= len(e.sim.procs) {
		panic(fmt.Sprintf("des: send to invalid rank %d", dst))
	}
	e.sim.post(e.p, dst, tag, bytes)
}

// Recv blocks until a message with matching src and tag arrives. Time
// blocked before the sender issued the send is accounted as Wait; time
// covering the in-flight transfer is accounted as Comm.
func (e *Env) Recv(src, tag int) {
	e.p.yield <- request{kind: reqRecv, src: src, tag: tag}
	<-e.p.resume
}

// Barrier blocks until every rank has entered it; blocked time is Wait.
func (e *Env) Barrier() {
	e.p.yield <- request{kind: reqBarrier}
	<-e.p.resume
}

type sim struct {
	procs    []*proc
	transfer TransferFunc
	inBar    int
}

func (s *sim) post(from *proc, dst, tag int, bytes int64) {
	dt := s.transfer(from.id, dst, bytes)
	if dt < 0 {
		panic("des: negative transfer time")
	}
	m := message{src: from.id, tag: tag, sentAt: from.now, arrival: from.now + dt, bytes: bytes}
	s.procs[dst].mailbox = append(s.procs[dst].mailbox, m)
}

// Simulate runs the program on n ranks and returns per-rank stats plus
// the makespan (largest finishing time).
func Simulate(n int, transfer TransferFunc, program func(e *Env) error) ([]Stats, float64, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("des: invalid world size %d", n)
	}
	if transfer == nil {
		transfer = func(int, int, int64) float64 { return 0 }
	}
	s := &sim{transfer: transfer, procs: make([]*proc, n)}
	for i := range s.procs {
		s.procs[i] = &proc{
			id:     i,
			resume: make(chan struct{}),
			yield:  make(chan request),
		}
	}
	// Launch rank goroutines; each blocks immediately until resumed.
	for _, p := range s.procs {
		go func(p *proc) {
			defer func() {
				if r := recover(); r != nil {
					p.err = fmt.Errorf("des: rank %d panicked: %v", p.id, r)
				}
				p.yield <- request{kind: reqDone}
			}()
			env := &Env{p: p, sim: s}
			<-p.resume
			if err := program(env); err != nil {
				p.err = err
			}
		}(p)
	}

	// runUntilBlocked resumes p and services its requests until it
	// issues one the scheduler cannot satisfy immediately.
	runnable := make([]*proc, 0, n)
	for _, p := range s.procs {
		runnable = append(runnable, p)
	}
	var barrierers []*proc

	tryRecv := func(p *proc) bool {
		// Find the earliest-arriving matching message.
		best := -1
		for i, m := range p.mailbox {
			if (p.req.src < 0 || m.src == p.req.src) && m.tag == p.req.tag {
				if best < 0 || m.arrival < p.mailbox[best].arrival {
					best = i
				}
			}
		}
		if best < 0 {
			return false
		}
		m := p.mailbox[best]
		p.mailbox = append(p.mailbox[:best], p.mailbox[best+1:]...)
		// Accounting: wait until the send was issued, comm for the
		// transfer remainder.
		if m.sentAt > p.now {
			p.stats.Wait += m.sentAt - p.now
			p.now = m.sentAt
		}
		if m.arrival > p.now {
			p.stats.Comm += m.arrival - p.now
			p.now = m.arrival
		}
		return true
	}

	// drive services p's requests until it blocks or finishes. The
	// caller must have already resumed the process (it is sitting in a
	// `<-p.resume` inside its last API call, or at startup).
	drive := func(p *proc) {
		for {
			req := <-p.yield
			p.req = req
			switch req.kind {
			case reqCompute:
				p.now += req.dt
				if req.chrg == 1 {
					p.stats.Comm += req.dt
				} else {
					p.stats.Compute += req.dt
				}
				p.resume <- struct{}{}
			case reqRecv:
				if tryRecv(p) {
					p.resume <- struct{}{}
					continue
				}
				p.blocked = true
				return
			case reqBarrier:
				barrierers = append(barrierers, p)
				p.blocked = true
				return
			case reqDone:
				p.done = true
				return
			}
		}
	}

	for _, p := range runnable {
		p.resume <- struct{}{}
		drive(p)
	}

	for {
		// Release a full barrier.
		if len(barrierers) == n-countDone(s.procs) && len(barrierers) > 0 {
			t := 0.0
			for _, p := range barrierers {
				if p.now > t {
					t = p.now
				}
			}
			waiting := barrierers
			barrierers = nil
			// Resume in deterministic order.
			sort.Slice(waiting, func(i, j int) bool { return waiting[i].id < waiting[j].id })
			for _, p := range waiting {
				p.stats.Wait += t - p.now
				p.now = t
				p.blocked = false
				p.resume <- struct{}{}
				drive(p)
			}
			continue
		}
		// Find a blocked receiver whose message is now available.
		progressed := false
		// Deterministic order: by rank.
		for _, p := range s.procs {
			if p.done || !p.blocked || p.req.kind != reqRecv {
				continue
			}
			if tryRecv(p) {
				p.blocked = false
				progressed = true
				p.resume <- struct{}{}
				drive(p)
				// Keep sweeping: drive may have posted messages that
				// unblock later ranks in this same pass.
			}
		}
		if progressed {
			continue
		}
		// Finished?
		if countDone(s.procs) == n {
			break
		}
		// No barrier release, no deliverable message, not all done.
		if len(barrierers) > 0 {
			// Some ranks in barrier, others blocked on recv forever.
			return nil, 0, fmt.Errorf("%w: %d ranks in barrier, others starved", ErrDeadlock, len(barrierers))
		}
		return nil, 0, ErrDeadlock
	}

	stats := make([]Stats, n)
	makespan := 0.0
	for i, p := range s.procs {
		if p.err != nil {
			return nil, 0, p.err
		}
		stats[i] = p.stats
		if p.now > makespan {
			makespan = p.now
		}
	}
	return stats, makespan, nil
}

func countDone(procs []*proc) int {
	c := 0
	for _, p := range procs {
		if p.done {
			c++
		}
	}
	return c
}
