package ptycho

import (
	"image"
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"testing"
)

func smallDataset(t testing.TB, slices int) *Dataset {
	t.Helper()
	ds, err := SimulateDataset(SimulateOptions{
		ScanCols: 4, ScanRows: 4, OverlapRatio: 0.7,
		WindowN: 16, Slices: slices, Phantom: PhantomRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSimulateDatasetDefaults(t *testing.T) {
	ds, err := SimulateDataset(SimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumLocations() != 36 {
		t.Fatalf("locations = %d, want 36 (6x6 default)", ds.NumLocations())
	}
	if ds.NumSlices() != 1 || ds.WindowN() != 16 {
		t.Fatalf("slices=%d window=%d", ds.NumSlices(), ds.WindowN())
	}
	w, h := ds.ImageSize()
	if w <= 0 || h <= 0 {
		t.Fatal("degenerate image size")
	}
	probe := ds.Probe()
	if probe.W != 16 || probe.H != 16 {
		t.Fatal("probe size")
	}
	m := ds.Measurement(0)
	if len(m) != 16*16 {
		t.Fatal("measurement size")
	}
}

func TestSimulateDatasetValidation(t *testing.T) {
	if _, err := SimulateDataset(SimulateOptions{OverlapRatio: 1.5}); err == nil {
		t.Fatal("overlap 1.5 accepted")
	}
	if _, err := SimulateDataset(SimulateOptions{Phantom: PhantomKind(99)}); err == nil {
		t.Fatal("unknown phantom accepted")
	}
}

func TestCostAtGroundTruthIsZero(t *testing.T) {
	ds := smallDataset(t, 2)
	truth := []Field{ds.GroundTruthSlice(0), ds.GroundTruthSlice(1)}
	if f := ds.Cost(truth); f > 1e-12 {
		t.Fatalf("cost at truth = %g", f)
	}
}

func TestSerialReconstruction(t *testing.T) {
	ds := smallDataset(t, 1)
	res, err := ds.Reconstruct(ReconstructOptions{
		Algorithm: Serial, StepSize: 0.02, Iterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Fatal("serial must report 1 worker")
	}
	if res.CostHistory[9] >= res.CostHistory[0]*0.6 {
		t.Fatalf("serial did not converge: %v", res.CostHistory)
	}
	if res.RelativeErrorTo(ds, 0) > 1.0 {
		t.Fatal("implausible relative error")
	}
	if _, err := res.SeamScore(0); err == nil {
		t.Fatal("seam score must require a parallel run")
	}
}

func TestGradientDecompositionMatchesSerial(t *testing.T) {
	// The headline numerical property, exercised through the public
	// API: GD batch mode == serial batch mode.
	ds := smallDataset(t, 1)
	serial, err := ds.Reconstruct(ReconstructOptions{
		Algorithm: Serial, StepSize: 0.02, Iterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ds.Reconstruct(ReconstructOptions{
		Algorithm: GradientDecomposition, MeshRows: 2, MeshCols: 2,
		StepSize: 0.02, Iterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers != 4 {
		t.Fatalf("workers = %d", par.Workers)
	}
	var maxDiff float64
	for i := range serial.Slices[0].Data {
		if d := cmplx.Abs(serial.Slices[0].Data[i] - par.Slices[0].Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Fatalf("GD differs from serial by %g", maxDiff)
	}
	if par.BytesSent == 0 {
		t.Fatal("GD must communicate")
	}
}

func TestFaithfulAlg1Converges(t *testing.T) {
	ds := smallDataset(t, 1)
	res, err := ds.Reconstruct(ReconstructOptions{
		Algorithm: GradientDecomposition, FaithfulAlg1: true,
		StepSize: 0.01, Iterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostHistory[7] >= res.CostHistory[0]*0.8 {
		t.Fatalf("faithful Alg 1 did not converge: %v", res.CostHistory)
	}
}

func TestHaloVoxelExchangeThroughAPI(t *testing.T) {
	ds := smallDataset(t, 1)
	res, err := ds.Reconstruct(ReconstructOptions{
		Algorithm: HaloVoxelExchange, StepSize: 0.01, Iterations: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostHistory[5] >= res.CostHistory[0] {
		t.Fatalf("HVE did not converge: %v", res.CostHistory)
	}
	if score, err := res.SeamScore(0); err != nil || score <= 0 {
		t.Fatalf("seam score %g, %v", score, err)
	}
}

func TestOnIterationCallbackThroughAPI(t *testing.T) {
	ds := smallDataset(t, 1)
	count := 0
	_, err := ds.Reconstruct(ReconstructOptions{
		Algorithm: GradientDecomposition, Iterations: 3,
		OnIteration: func(int, float64) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("callback fired %d times", count)
	}
}

func TestFieldBasics(t *testing.T) {
	f := NewField(3, 2)
	f.Set(2, 1, 5i)
	if f.At(2, 1) != 5i {
		t.Fatal("At/Set")
	}
	c := f.Clone()
	c.Set(0, 0, 1)
	if f.At(0, 0) == c.At(0, 0) {
		t.Fatal("clone aliases")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Serial.String() != "serial" ||
		GradientDecomposition.String() != "gradient-decomposition" ||
		HaloVoxelExchange.String() != "halo-voxel-exchange" {
		t.Fatal("algorithm names drifted")
	}
	if Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm must still render")
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	ds := smallDataset(t, 1)
	if _, err := ds.Reconstruct(ReconstructOptions{Algorithm: Algorithm(42)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestPhaseAndMagnitudeImages(t *testing.T) {
	ds := smallDataset(t, 1)
	f := ds.GroundTruthSlice(0)
	ph := PhaseImage(f)
	mg := MagnitudeImage(f)
	if ph.Bounds() != image.Rect(0, 0, f.W, f.H) || mg.Bounds() != ph.Bounds() {
		t.Fatal("image bounds")
	}
	// The phantom has contrast; the image must use a real range.
	lo, hi := 255, 0
	for _, px := range ph.Pix {
		if int(px) < lo {
			lo = int(px)
		}
		if int(px) > hi {
			hi = int(px)
		}
	}
	if hi-lo < 100 {
		t.Fatalf("phase image has weak contrast: [%d, %d]", lo, hi)
	}
}

func TestSavePNG(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "probe.png")
	ds := smallDataset(t, 1)
	if err := SavePNG(path, MagnitudeImage(ds.Probe())); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("png not written: %v", err)
	}
	if err := SavePNG(filepath.Join(dir, "missing", "x.png"), PhaseImage(ds.Probe())); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestNoiseAffectsCost(t *testing.T) {
	clean, err := SimulateDataset(SimulateOptions{
		ScanCols: 3, ScanRows: 3, Phantom: PhantomRandom, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := SimulateDataset(SimulateOptions{
		ScanCols: 3, ScanRows: 3, Phantom: PhantomRandom, Seed: 4,
		DoseElectrons: 1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := []Field{clean.GroundTruthSlice(0)}
	if clean.Cost(truth) > 1e-12 {
		t.Fatal("clean cost nonzero")
	}
	if noisy.Cost(truth) <= 0 {
		t.Fatal("noisy cost must be positive at truth")
	}
}

func TestLeadTitanatePhantomThroughAPI(t *testing.T) {
	ds, err := SimulateDataset(SimulateOptions{
		ScanCols: 4, ScanRows: 4, Slices: 2, Phantom: PhantomLeadTitanate,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := ds.GroundTruthSlice(0)
	var hasPhase bool
	for _, v := range f.Data {
		if math.Abs(cmplx.Phase(v)) > 0.01 {
			hasPhase = true
			break
		}
	}
	if !hasPhase {
		t.Fatal("PbTiO3 phantom has no phase structure")
	}
}
