module ptychopath

go 1.24
