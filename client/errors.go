package client

import (
	"errors"
	"fmt"
	"time"
)

// Machine-readable error codes of the /v1 problem envelope. Every
// non-2xx /v1 response carries exactly one of these in its "code"
// member; the HTTP status is presentation, the code is the contract.
const (
	// CodeBadParams (400): malformed query/params/body/cursor — fix the
	// request, retrying it unchanged cannot succeed.
	CodeBadParams = "bad_params"
	// CodeNotFound (404): no job with that ID.
	CodeNotFound = "not_found"
	// CodeQueueFull (429): the bounded job queue has no room; retry the
	// same submission after RetryAfter.
	CodeQueueFull = "queue_full"
	// CodeIngestFull (429): the streaming job's frame buffer is full;
	// retry the same chunk after RetryAfter (acceptance is
	// all-or-nothing).
	CodeIngestFull = "ingest_full"
	// CodeQuotaExceeded (429): the submission or chunk would exceed the
	// tenant's configured quota (concurrent jobs, ingest bytes); retry
	// after RetryAfter, when the tenant's in-flight work has drained.
	CodeQuotaExceeded = "quota_exceeded"
	// CodePayloadTooLarge (413): the request body exceeds the server's
	// upload bound (-max-upload). Not retryable as-is.
	CodePayloadTooLarge = "payload_too_large"
	// CodeChunkTooLarge (400): the frame chunk exceeds the job's ingest
	// capacity and can NEVER fit — split it; backing off would livelock.
	CodeChunkTooLarge = "chunk_too_large"
	// CodeJobFinished (409): the operation needs a live job but this
	// one reached a terminal state.
	CodeJobFinished = "job_finished"
	// CodeNotResumable (409): resume needs a cancelled or failed job
	// with a checkpoint and iterations left.
	CodeNotResumable = "not_resumable"
	// CodeNotStreaming (409): frames/eof sent to a batch job.
	CodeNotStreaming = "not_streaming"
	// CodeStreamClosed (409): frames sent after the stream's EOF.
	CodeStreamClosed = "stream_closed"
	// CodeNoSnapshot (404): preview/object requested before the job's
	// first checkpoint.
	CodeNoSnapshot = "no_snapshot"
	// CodeShuttingDown (503): the server is draining; submit elsewhere
	// or later.
	CodeShuttingDown = "shutting_down"
	// CodeInternal (500): unexpected server failure.
	CodeInternal = "internal"
)

// Problem is the RFC 9457-style error envelope every /v1 error
// response carries, served as application/problem+json. Code is the
// machine-readable contract (see the Code constants); Type is its URI
// form; Detail is human-readable and unstable.
type Problem struct {
	Type   string `json:"type"`
	Title  string `json:"title"`
	Status int    `json:"status"`
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
	// RetryAfterMS mirrors the Retry-After header in milliseconds on
	// backpressure responses (queue_full, ingest_full); 0 otherwise.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// LegacyError duplicates Detail under the pre-/v1 key so consumers
	// of the old {"error": "..."} blob keep working. Deprecated: read
	// Detail (and Code) instead.
	LegacyError string `json:"error,omitempty"`
}

// ProblemType returns the "type" URI of a code.
func ProblemType(code string) string { return "urn:ptychopath:problem:" + code }

// Error is a /v1 API failure decoded into its problem envelope — the
// typed form every Client method returns for non-2xx responses. Match
// with errors.Is against the Err* sentinels (codes compare; status,
// detail and retry hints are carried along):
//
//	if errors.Is(err, client.ErrQueueFull) { ... }
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable problem code (Code* constants).
	Code string
	// Detail is the server's human-readable explanation.
	Detail string
	// RetryAfter is the server's backoff hint on backpressure errors
	// (zero when the server sent none).
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("ptychoserve: %s (status %d)", e.Code, e.Status)
	}
	return fmt.Sprintf("ptychoserve: %s: %s", e.Code, e.Detail)
}

// Is matches two API errors by code alone, so sentinel comparisons
// ignore the per-response status and detail.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Sentinels for errors.Is, one per problem code.
var (
	ErrBadParams       = &Error{Code: CodeBadParams}
	ErrNotFound        = &Error{Code: CodeNotFound}
	ErrQueueFull       = &Error{Code: CodeQueueFull}
	ErrIngestFull      = &Error{Code: CodeIngestFull}
	ErrQuotaExceeded   = &Error{Code: CodeQuotaExceeded}
	ErrPayloadTooLarge = &Error{Code: CodePayloadTooLarge}
	ErrChunkTooLarge   = &Error{Code: CodeChunkTooLarge}
	ErrJobFinished     = &Error{Code: CodeJobFinished}
	ErrNotResumable    = &Error{Code: CodeNotResumable}
	ErrNotStreaming    = &Error{Code: CodeNotStreaming}
	ErrStreamClosed    = &Error{Code: CodeStreamClosed}
	ErrNoSnapshot      = &Error{Code: CodeNoSnapshot}
	ErrShuttingDown    = &Error{Code: CodeShuttingDown}
	ErrInternal        = &Error{Code: CodeInternal}
)

// Retryable reports whether err is a backpressure rejection the server
// expects the caller to retry verbatim after Error.RetryAfter —
// queue_full, ingest_full and quota_exceeded. Client methods retry
// these automatically up to their retry budget; a Retryable error
// escaping to the caller means the budget ran out.
func Retryable(err error) bool {
	var e *Error
	if !errors.As(err, &e) {
		return false
	}
	return e.Code == CodeQueueFull || e.Code == CodeIngestFull || e.Code == CodeQuotaExceeded
}
