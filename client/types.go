package client

import "time"

// SubmitRequest is the typed job submission: the JSON schema of the
// "params" part of a multipart POST /v1/jobs or /v1/jobs/stream body.
// The server decodes it strictly (unknown fields are bad_params), so a
// typo cannot silently fall back to a default. Zero values select the
// server defaults documented per field.
type SubmitRequest struct {
	// Algorithm is "serial", "gd" (gradient decomposition) or "hve"
	// (halo voxel exchange; batch jobs only). Default "serial".
	Algorithm string `json:"algorithm,omitempty"`
	// Iterations is the iteration count of a batch job, or the TAIL of
	// a streaming job (iterations over the complete set after EOF).
	// Default 20.
	Iterations int `json:"iterations,omitempty"`
	// StepSize is the gradient step. Default 0.01.
	StepSize float64 `json:"step_size,omitempty"`
	// MeshRows and MeshCols shape the tile mesh of the parallel
	// algorithms. Default 2x2.
	MeshRows int `json:"mesh_rows,omitempty"`
	MeshCols int `json:"mesh_cols,omitempty"`
	// RoundsPerIteration is the communication frequency of the parallel
	// algorithms. Default 1.
	RoundsPerIteration int `json:"rounds_per_iteration,omitempty"`
	// IntraWorkers is the per-rank goroutine count for gd batch mode.
	IntraWorkers int `json:"intra_workers,omitempty"`
	// CheckpointEvery is the iteration period of OBJCKv1 checkpoints
	// and preview snapshots; 0 selects the server default.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Grid runs the parallel engine across registered grid-worker
	// processes (requires a server started with a grid coordinator).
	Grid bool `json:"grid,omitempty"`
	// Priority is the scheduling class: "bulk" (default) or
	// "interactive". Under a weighted-fair server, interactive jobs
	// dispatch ahead of bulk work and may preempt a running bulk job at
	// its next iteration boundary (the preempted job checkpoints and
	// resumes later — no work is lost).
	Priority string `json:"priority,omitempty"`

	// The fields below apply to streaming submissions only.

	// FoldEvery is the number of iterations between ingest folds while
	// the stream is open. Default 1.
	FoldEvery int `json:"fold_every,omitempty"`
	// MaxIterations, when positive, bounds iterations run before the
	// stream closes. 0 means unlimited.
	MaxIterations int `json:"max_iterations,omitempty"`
	// IngestCapacity bounds the job's frame buffer (appends beyond it
	// answer 429 ingest_full). 0 selects the server default.
	IngestCapacity int `json:"ingest_capacity,omitempty"`

	// IdempotencyKey, when non-empty, is sent as the Idempotency-Key
	// header: resubmitting with the same key returns the job the first
	// submission created instead of enqueueing a duplicate. When empty,
	// Submit and SubmitStreaming generate a random key per call so
	// their own automatic retries are replay-safe. Not part of the
	// JSON params (it travels as a header).
	IdempotencyKey string `json:"-"`

	// RequestID, when non-empty, is sent as the X-Request-ID header and
	// becomes the job's trace context (Job.RequestID, the span timeline,
	// the server's log lines). When empty the server assigns one. Like
	// the idempotency key, it travels as a header, not JSON.
	RequestID string `json:"-"`
}

// Job state names, as served in Job.State.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is a point-in-time job summary — the JSON schema of every job
// object the /v1 API returns.
type Job struct {
	ID string `json:"id"`
	// RequestID is the job's trace context: the X-Request-ID of the
	// submission that created it.
	RequestID string `json:"request_id,omitempty"`
	State     string `json:"state"`
	Algorithm string `json:"algorithm"`
	// Grid marks a job running on the distributed worker grid.
	Grid bool `json:"grid,omitempty"`
	// Iter is the completed-iteration count (continuing the original
	// job's count for resumed jobs).
	Iter int `json:"iter"`
	// TotalIters is the planned iteration count of a batch job; 0 for
	// a streaming job while its stream is open.
	TotalIters int     `json:"total_iters,omitempty"`
	Cost       float64 `json:"cost"`
	// CostHistory is the tail of the per-iteration cost curve (bounded
	// by the server unless ?history=all was requested).
	CostHistory    []float64 `json:"cost_history,omitempty"`
	CheckpointIter int       `json:"checkpoint_iter,omitempty"`
	Checkpoint     string    `json:"checkpoint,omitempty"`
	ResumedFrom    string    `json:"resumed_from,omitempty"`
	// RecoveredFrom marks a job revived by server crash recovery and
	// says where its work restarted: "checkpoint@k" (warm start from
	// the OBJCKv1 checkpoint at iteration k), "scratch" (no checkpoint
	// existed yet), or "stream" (refolded from the spooled frame
	// journal). Empty for jobs that never crossed a restart.
	RecoveredFrom string `json:"recovered_from,omitempty"`
	// Tenant is the tenant the job is accounted to (derived from the
	// submission's X-API-Key; "anonymous" without one). Priority echoes
	// the submitted scheduling class. PreemptedCount is how many times
	// the job was checkpointed and requeued to make room for
	// interactive work — preemption is lossless, so a non-zero count
	// plus RecoveredFrom "checkpoint@k" means the job resumed from
	// iteration k with nothing recomputed.
	Tenant         string `json:"tenant,omitempty"`
	Priority       string `json:"priority,omitempty"`
	PreemptedCount int    `json:"preempted_count,omitempty"`
	Error          string `json:"error,omitempty"`
	Created        time.Time `json:"created"`
	Started        time.Time `json:"started,omitzero"`
	Finished       time.Time `json:"finished,omitzero"`

	// Streaming progress (omitted for batch jobs).
	Streaming    bool `json:"streaming,omitempty"`
	Frames       int  `json:"frames,omitempty"`
	ActiveFrames int  `json:"active_frames,omitempty"`
	Folds        int  `json:"folds,omitempty"`
	EOF          bool `json:"eof,omitempty"`

	// Prediction is the runtime forecast made at job setup from the
	// dataset geometry and the server's calibrated throughput; nil for
	// streaming jobs (open-ended acquisition defies prediction).
	Prediction *Prediction `json:"prediction,omitempty"`
	// ActualSeconds is the measured wall-clock runtime, set when the job
	// finishes.
	ActualSeconds float64 `json:"actual_seconds,omitempty"`
	// PredictionErrorRatio is actual over predicted runtime (1.0 =
	// perfect forecast); 0 until the job finishes or when no prediction
	// was made.
	PredictionErrorRatio float64 `json:"prediction_error_ratio,omitempty"`
	// StragglerRanks lists ranks the imbalance tracker flagged as
	// persistently slow (grid/parallel jobs only).
	StragglerRanks []int `json:"straggler_ranks,omitempty"`
	// ImbalanceRatio is the mean max-over-mean per-rank compute ratio
	// across iterations (1.0 = perfectly balanced; 0 when untracked).
	ImbalanceRatio float64 `json:"imbalance_ratio,omitempty"`
}

// Prediction is a pre-run runtime forecast derived from the
// performance model (job geometry × machine calibration).
type Prediction struct {
	// Seconds is the predicted total runtime.
	Seconds float64 `json:"seconds"`
	// ComputeSeconds, WaitSeconds and CommSeconds break the prediction
	// into phases.
	ComputeSeconds float64 `json:"compute_seconds"`
	WaitSeconds    float64 `json:"wait_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	// Source is "model" (static calibration) or "calibrated" (live
	// throughput estimate from previously observed iterations).
	Source string `json:"source"`
	// Ranks is the parallel width the prediction assumed.
	Ranks int `json:"ranks"`
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool {
	return j.State == StateDone || j.State == StateFailed || j.State == StateCancelled
}

// JobPage is one page of GET /v1/jobs.
type JobPage struct {
	Jobs []Job `json:"jobs"`
	// NextCursor continues the listing when non-empty: pass it as the
	// cursor of the next request.
	NextCursor string `json:"next_cursor,omitempty"`
}

// ListOptions selects a page of GET /v1/jobs.
type ListOptions struct {
	// Status keeps only jobs in the named state (StateQueued …); empty
	// keeps all.
	Status string
	// Cursor resumes a listing from a previous page's NextCursor.
	Cursor string
	// Limit bounds the page size; 0 selects the server default.
	Limit int
}

// FrameAck is the acknowledgment of an accepted frame chunk.
type FrameAck struct {
	// Accepted is the frame count of this chunk (0 for an 'E' chunk).
	Accepted int `json:"accepted"`
	// Total is the running total the job's ingest has accepted.
	Total int `json:"total"`
	// EOF reports that the chunk closed the stream.
	EOF bool `json:"eof,omitempty"`
}

// Event is one entry of a job's live feed (GET /v1/jobs/{id}/events).
// Types: "info" (full job summary in Info), "state", "iteration",
// "frames", "fold", "eof", "snapshot" — see the HTTP API reference.
type Event struct {
	Type   string    `json:"type"`
	Job    string    `json:"job"`
	State  string    `json:"state,omitempty"`
	Iter   int       `json:"iter,omitempty"`
	Cost   float64   `json:"cost,omitempty"`
	Frames int       `json:"frames,omitempty"`
	Time   time.Time `json:"time"`
	// Info carries the initial job summary on "info" events; nil
	// otherwise.
	Info *Job `json:"-"`
}

// TraceSpan is one timed phase of a job's span timeline
// (GET /v1/jobs/{id}/trace). Spans form a tree through Parent
// (0 = root). Rank -1 marks coordinator spans; Iter -1 marks spans not
// tied to an iteration.
type TraceSpan struct {
	ID     int       `json:"id"`
	Parent int       `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Rank   int       `json:"rank"`
	Iter   int       `json:"iter"`
	Start  time.Time `json:"start"`
	// End is zero while the span is still open.
	End time.Time `json:"end,omitzero"`
	// MS is the span duration in milliseconds (0 while open).
	MS float64 `json:"ms"`
}

// JobTrace is a job summary together with its span timeline.
type JobTrace struct {
	Job   Job         `json:"job"`
	Spans []TraceSpan `json:"spans"`
}

// GridWorker describes one registered grid worker endpoint.
type GridWorker struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Busy bool   `json:"busy"`
	// LastSeen is the time of the worker's most recent frame on the
	// coordinator hub — the liveness signal.
	LastSeen time.Time `json:"last_seen,omitzero"`
	// BytesIn/BytesOut/Messages are cumulative transport totals for this
	// endpoint as counted by the hub.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	Messages int64 `json:"messages"`
	// Sessions counts the distributed sessions this endpoint has served.
	Sessions int64 `json:"sessions"`
}

// GridStatus is the worker-grid coordinator's state (GET /v1/grid).
type GridStatus struct {
	Enabled bool         `json:"enabled"`
	Addr    string       `json:"addr"`
	Workers []GridWorker `json:"workers"`
	Idle    int          `json:"idle"`
}

// Status is the fleet-health rollup (GET /v1/status): queue and pool
// state, grid liveness, WAL counters and prediction accuracy in one
// scrape-friendly JSON object.
type Status struct {
	Time          time.Time `json:"time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Workers       int       `json:"workers"`
	WorkersIdle   int       `json:"workers_idle"`
	QueueDepth    int       `json:"queue_depth"`
	// Jobs counts jobs by state name ("queued", "running", …); every
	// state is present, zero when empty.
	Jobs map[string]int `json:"jobs"`
	// Grid is nil when the server runs without a worker grid.
	Grid *GridSummary `json:"grid,omitempty"`
	// WAL is nil when the server runs without a durable store.
	WAL        *WALSummary       `json:"wal,omitempty"`
	Prediction PredictionSummary `json:"prediction"`
	// SchedPolicy is the server's queue policy ("fifo" or "wfq");
	// Tenants is the per-tenant fairness rollup, nil before the first
	// submission.
	SchedPolicy string         `json:"sched_policy,omitempty"`
	Tenants     []TenantStatus `json:"tenants,omitempty"`
}

// TenantStatus is one tenant's row of the Status fairness rollup.
type TenantStatus struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// Active is the tenant's in-flight (queued + running) jobs;
	// MaxActive and IngestQuotaBytes echo its configured caps (0 =
	// unlimited); IngestBytes is its live streaming-buffer footprint.
	Active           int   `json:"active"`
	MaxActive        int   `json:"max_active,omitempty"`
	IngestQuotaBytes int64 `json:"ingest_quota_bytes,omitempty"`
	IngestBytes      int64 `json:"ingest_bytes,omitempty"`
	Submitted        int64 `json:"submitted_total"`
	Preempted        int64 `json:"preempted_total,omitempty"`
	QuotaRejections  int64 `json:"quota_rejections_total,omitempty"`
	// CompletedCostSeconds is the tenant's finished wall-clock work;
	// Share is its fraction of all finished work — under wfq this
	// converges to the configured weight ratio when tenants contend.
	CompletedCostSeconds float64 `json:"completed_cost_seconds"`
	Share                float64 `json:"share,omitempty"`
}

// GridSummary is the grid block of Status.
type GridSummary struct {
	Addr        string       `json:"addr"`
	Workers     []GridWorker `json:"workers"`
	Busy        int          `json:"busy"`
	Sessions    int64        `json:"sessions_total"`
	BytesRouted int64        `json:"bytes_routed_total"`
}

// WALSummary is the durability block of Status.
type WALSummary struct {
	Records       int64 `json:"records_total"`
	Syncs         int64 `json:"syncs_total"`
	Compactions   int64 `json:"compactions_total"`
	Bytes         int64 `json:"bytes"`
	Errors        int64 `json:"errors_total"`
	ReplayRecords int   `json:"replay_records"`
	ReplayTorn    int   `json:"replay_torn"`
}

// PredictionSummary aggregates runtime-forecast accuracy across
// finished jobs.
type PredictionSummary struct {
	// Jobs is how many finished jobs were scored against a prediction.
	Jobs int `json:"jobs"`
	// MeanAbsErrorPct is the mean absolute prediction error in percent
	// (|ratio−1|·100 averaged over scored jobs).
	MeanAbsErrorPct float64 `json:"mean_abs_error_pct"`
	// LastErrorRatio is the most recent actual/predicted ratio.
	LastErrorRatio float64 `json:"last_error_ratio,omitempty"`
	// CalibratedFlops is the live per-rank throughput estimate feeding
	// new predictions; 0 until the first iteration is observed.
	CalibratedFlops float64 `json:"calibrated_flops,omitempty"`
	// CalibrationIters is how many iteration observations back the
	// estimate.
	CalibrationIters int `json:"calibration_iters,omitempty"`
}

// FlightEvent is one entry of a job's flight recorder: a bounded ring
// of recent structured events (state changes, iterations, checkpoints,
// errors, straggler flags) kept per job for post-mortem debugging.
type FlightEvent struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	State  string    `json:"state,omitempty"`
	Iter   int       `json:"iter,omitempty"`
	Cost   float64   `json:"cost,omitempty"`
	Frames int       `json:"frames,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// DebugBundle is the one-stop failure dossier of a job
// (GET /v1/jobs/{id}/debug): summary with full cost history, the
// parameters as submitted, the span timeline and the flight-recorder
// tail.
type DebugBundle struct {
	Job    Job           `json:"job"`
	Params SubmitRequest `json:"params"`
	Spans  []TraceSpan   `json:"spans"`
	Events []FlightEvent `json:"events"`
}
