package client_test

import (
	"bytes"
	"context"
	"errors"
	"image/png"
	"io"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ptychopath/client"
	"ptychopath/internal/dataio"
	"ptychopath/internal/jobs"
	"ptychopath/internal/jobs/httpapi"
	"ptychopath/internal/jobs/sched"
	"ptychopath/internal/phantom"
	"ptychopath/internal/physics"
	"ptychopath/internal/scan"
	"ptychopath/internal/solver"
)

// testProblem builds a small synthetic dataset for the SDK tests.
func testProblem(t *testing.T) *solver.Problem {
	t.Helper()
	pat, err := scan.Raster(scan.RasterConfig{Cols: 4, Rows: 4, StepPix: 5, RadiusPix: 6, MarginPix: 8})
	if err != nil {
		t.Fatal(err)
	}
	obj := phantom.RandomObject(pat.ImageW, pat.ImageH, 1, 1)
	prob, err := solver.Simulate(solver.SimulateConfig{
		Optics: physics.PaperOptics(), Pattern: pat, Object: obj, WindowN: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// newClient spins up a full service + /v1 HTTP surface and a client
// pointed at it — the SDK tests run against the real stack.
func newClient(t *testing.T, cfg jobs.Config, opts ...client.Option) (*client.Client, *jobs.Service) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 2
	}
	svc, err := jobs.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown()
	})
	c, err := client.New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, svc
}

func datasetBytes(t *testing.T, prob *solver.Problem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataio.Write(&buf, prob); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClientBatchLifecycle is the SDK happy path end to end: submit,
// wait, inspect history, download preview and object, and hit the
// typed error paths of a finished job.
func TestClientBatchLifecycle(t *testing.T) {
	ctx := context.Background()
	prob := testProblem(t)
	c, _ := newClient(t, jobs.Config{})

	job, err := c.Submit(ctx, client.SubmitRequest{
		Algorithm: "serial", Iterations: 4, CheckpointEvery: 2,
	}, bytes.NewReader(datasetBytes(t, prob)))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || (job.State != client.StateQueued && job.State != client.StateRunning) {
		t.Fatalf("submitted job: %+v", job)
	}

	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone || final.Iter != 4 || final.TotalIters != 4 {
		t.Fatalf("final job: %+v", final)
	}

	hist, err := c.History(ctx, job.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history has %d entries, want 4", len(hist))
	}
	short, err := c.History(ctx, job.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 2 || short[0] != hist[2] || short[1] != hist[3] {
		t.Fatalf("history tail %v, want last two of %v", short, hist)
	}

	raw, err := c.PreviewPNG(ctx, job.ID, client.PreviewOptions{Kind: "mag"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(bytes.NewReader(raw)); err != nil {
		t.Fatalf("preview is not a PNG: %v", err)
	}

	body, iters, err := c.Object(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dataio.ReadObject(body)
	body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if iters != 4 || len(obj) != prob.Slices || !obj[0].Bounds.Eq(prob.ImageBounds()) {
		t.Fatalf("object: %d iters, %d slices over %v", iters, len(obj), obj[0].Bounds)
	}

	// Typed errors from a finished job.
	if _, err := c.Cancel(ctx, job.ID); !errors.Is(err, client.ErrJobFinished) {
		t.Fatalf("cancel finished: %v, want ErrJobFinished", err)
	}
	if _, err := c.Resume(ctx, job.ID); !errors.Is(err, client.ErrNotResumable) {
		t.Fatalf("resume done job: %v, want ErrNotResumable", err)
	}
}

// TestClientTypedErrors covers the decode side of the problem
// envelope: codes arrive as matchable sentinels with details.
func TestClientTypedErrors(t *testing.T) {
	ctx := context.Background()
	c, _ := newClient(t, jobs.Config{})

	_, err := c.Get(ctx, "job-9999")
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("get unknown: %v, want ErrNotFound", err)
	}
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Code != client.CodeNotFound {
		t.Fatalf("error payload: %+v", apiErr)
	}

	_, err = c.Submit(ctx, client.SubmitRequest{Algorithm: "warp-drive"},
		bytes.NewReader(datasetBytes(t, testProblem(t))))
	if !errors.Is(err, client.ErrBadParams) {
		t.Fatalf("bad algorithm: %v, want ErrBadParams", err)
	}

	_, err = c.PreviewPNG(ctx, "job-9999", client.PreviewOptions{})
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("preview unknown: %v, want ErrNotFound", err)
	}
	if client.Retryable(err) {
		t.Fatal("not_found must not be retryable")
	}
}

// TestClientStreamingEndToEnd drives a live acquisition through the
// SDK: open from an opening, follow events, feed chunks, close, wait.
func TestClientStreamingEndToEnd(t *testing.T) {
	ctx := context.Background()
	prob := testProblem(t)
	c, _ := newClient(t, jobs.Config{})

	var opening bytes.Buffer
	if err := dataio.WriteStreamHeader(&opening, dataio.HeaderFromProblem(prob)); err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitStreaming(ctx, client.SubmitRequest{
		Algorithm: "serial", Iterations: 3, CheckpointEvery: 1,
	}, &opening)
	if err != nil {
		t.Fatal(err)
	}
	if !job.Streaming {
		t.Fatalf("job not streaming: %+v", job)
	}

	es, err := c.Events(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	seen := map[string]int{}
	evDone := make(chan error, 1)
	go func() {
		for {
			e, err := es.Next()
			if err == io.EOF {
				evDone <- nil
				return
			}
			if err != nil {
				evDone <- err
				return
			}
			if e.Type == "info" && (e.Info == nil || e.Info.ID != job.ID) {
				evDone <- errors.New("info event without the job summary")
				return
			}
			seen[e.Type]++
		}
	}()

	frames := dataio.FramesFromProblem(prob)
	half := len(frames) / 2
	for _, span := range [][2]int{{0, half}, {half, len(frames)}} {
		var chunk bytes.Buffer
		if err := dataio.WriteFrameChunk(&chunk, prob.WindowN, frames[span[0]:span[1]]); err != nil {
			t.Fatal(err)
		}
		ack, err := c.AppendFrames(ctx, job.ID, chunk.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if ack.Accepted != span[1]-span[0] || ack.Total != span[1] {
			t.Fatalf("ack %+v for span %v", ack, span)
		}
	}
	if _, err := c.CloseStream(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone || !final.EOF || final.Frames != len(frames) {
		t.Fatalf("final: %+v", final)
	}

	select {
	case err := <-evDone:
		if err != nil {
			t.Fatalf("event stream: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream did not end with the job")
	}
	for _, want := range []string{"info", "iteration", "frames", "eof", "state"} {
		if seen[want] == 0 {
			t.Errorf("no %q events (saw %v)", want, seen)
		}
	}

	// Frames after EOF surface the typed conflict.
	var chunk bytes.Buffer
	if err := dataio.WriteFrameChunk(&chunk, prob.WindowN, frames[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendFrames(ctx, job.ID, chunk.Bytes()); !errors.Is(err, client.ErrJobFinished) && !errors.Is(err, client.ErrStreamClosed) {
		t.Fatalf("frames after done: %v, want ErrJobFinished or ErrStreamClosed", err)
	}
}

// TestClientAutoPagination: the Jobs iterator walks every page in
// submit order.
func TestClientAutoPagination(t *testing.T) {
	ctx := context.Background()
	prob := testProblem(t)
	c, _ := newClient(t, jobs.Config{Workers: 1})
	data := datasetBytes(t, prob)

	var want []string
	for i := 0; i < 5; i++ {
		j, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 1000000}, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID)
	}
	var got []string
	for j, err := range c.Jobs(ctx, client.ListOptions{Limit: 2}) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, j.ID)
	}
	if len(got) != len(want) {
		t.Fatalf("iterator yielded %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterator order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// One page, bounded.
	page, err := c.List(ctx, client.ListOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 || page.NextCursor == "" {
		t.Fatalf("first page: %d jobs, cursor %q", len(page.Jobs), page.NextCursor)
	}
	for _, id := range want {
		c.Cancel(ctx, id)
	}
}

// TestClientRetryQueueFull: a queue-full rejection is retried with the
// server's hint until a slot frees, and the Idempotency-Key keeps the
// retries from enqueueing twice.
func TestClientRetryQueueFull(t *testing.T) {
	ctx := context.Background()
	prob := testProblem(t)
	retried := make(chan struct{}, 16)
	c, svc := newClient(t, jobs.Config{Workers: 1, QueueDepth: 1},
		client.WithRetry(10, 100*time.Millisecond),
		client.WithRetryNotify(func(err error, delay time.Duration) {
			if !errors.Is(err, client.ErrQueueFull) {
				t.Errorf("retry notify: %v, want ErrQueueFull", err)
			}
			select {
			case retried <- struct{}{}:
			default:
			}
		}))
	data := datasetBytes(t, prob)

	// Occupy the worker and the queue slot.
	blocker, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 1000000}, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	waitState := func(id, state string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			j, err := c.Get(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if j.State == state {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("%s never reached %s", id, state)
	}
	waitState(blocker.ID, client.StateRunning)
	queued, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 1}, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// Free the queue once the overflow submit has been rejected at
	// least once — the SDK must then succeed on a later retry.
	go func() {
		<-retried
		c.Cancel(ctx, queued.ID)
		c.Cancel(ctx, blocker.ID)
	}()
	j, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 1}, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("submit through backpressure: %v", err)
	}
	if len(retried) == 0 && j.ID == "" {
		t.Fatal("submission went through without observing backpressure")
	}
	// Exactly 3 jobs ever existed: blocker, queued, and ONE from the
	// retried submission.
	if n := len(svc.List()); n != 3 {
		t.Fatalf("registry holds %d jobs, want 3 (idempotent retries)", n)
	}
	c.Cancel(ctx, j.ID)
}

// TestClientIngestFullRetry: AppendFrames rides out 429 ingest_full
// automatically; a chunk that can never fit fails fast and typed.
func TestClientIngestFullRetry(t *testing.T) {
	ctx := context.Background()
	prob := testProblem(t)
	c, _ := newClient(t, jobs.Config{Workers: 1},
		client.WithRetry(50, 100*time.Millisecond))
	data := datasetBytes(t, prob)

	// Occupy the only worker so the streaming job cannot drain.
	blocker, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 1000000}, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var opening bytes.Buffer
	if err := dataio.WriteStreamHeader(&opening, dataio.HeaderFromProblem(prob)); err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitStreaming(ctx, client.SubmitRequest{
		Algorithm: "serial", Iterations: 2, IngestCapacity: 4,
	}, &opening)
	if err != nil {
		t.Fatal(err)
	}
	frames := dataio.FramesFromProblem(prob)
	chunk := func(lo, hi int) []byte {
		var buf bytes.Buffer
		if err := dataio.WriteFrameChunk(&buf, prob.WindowN, frames[lo:hi]); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	if _, err := c.AppendFrames(ctx, job.ID, chunk(0, 3)); err != nil {
		t.Fatal(err)
	}
	// 3 buffered + 3 more > capacity 4: the server rejects with 429
	// until the engine drains. Free the worker shortly after, and the
	// SDK's retries must push the chunk through.
	go func() {
		time.Sleep(50 * time.Millisecond)
		c.Cancel(ctx, blocker.ID)
	}()
	if _, err := c.AppendFrames(ctx, job.ID, chunk(3, 6)); err != nil {
		t.Fatalf("append through backpressure: %v", err)
	}

	// A chunk bigger than the whole ingest can never fit: typed, fast.
	if len(frames) >= 6 {
		_, err := c.AppendFrames(ctx, job.ID, chunk(6, min(len(frames), 12)))
		if len(frames) >= 12 && !errors.Is(err, client.ErrChunkTooLarge) {
			t.Fatalf("oversized chunk: %v, want ErrChunkTooLarge", err)
		}
	}
	if _, err := c.CloseStream(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("streaming job ended %s: %s", final.State, final.Error)
	}
}

// TestClientIdempotencyKeyExplicit: a caller-provided key dedupes
// across distinct Submit calls (the SDK's per-call random keys never
// collide, so cross-call dedupe needs an explicit key).
func TestClientIdempotencyKeyExplicit(t *testing.T) {
	ctx := context.Background()
	c, svc := newClient(t, jobs.Config{Workers: 1})
	data := datasetBytes(t, testProblem(t))

	req := client.SubmitRequest{Algorithm: "serial", Iterations: 2, IdempotencyKey: "beamline-scan-42"}
	a, err := c.Submit(ctx, req, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, req, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("same key produced %s and %s", a.ID, b.ID)
	}
	if n := len(svc.List()); n != 1 {
		t.Fatalf("registry holds %d jobs, want 1", n)
	}
}

// TestClientTenancyAndQuotaRetry is the end-to-end multi-tenant path:
// the API key on the client becomes the tenant on the wire, a tenant
// at its concurrent-job cap gets a 429 quota_exceeded whose live
// Retry-After drives the SDK's automatic retry, and the retry lands
// once the tenant's slot frees.
func TestClientTenancyAndQuotaRetry(t *testing.T) {
	ctx := context.Background()
	prob := testProblem(t)
	retried := make(chan struct{}, 16)
	var rejections atomic.Int32
	c, svc := newClient(t, jobs.Config{
		Workers: 1, QueueDepth: 8,
		Sched: sched.Config{
			Policy:  "wfq",
			Tenants: map[string]sched.TenantConfig{"alpha": {Weight: 2, MaxActive: 1}},
		},
	},
		client.WithAPIKey("alpha"),
		client.WithRetry(20, 100*time.Millisecond),
		client.WithRetryNotify(func(err error, delay time.Duration) {
			if !errors.Is(err, client.ErrQuotaExceeded) {
				t.Errorf("retry notify: %v, want ErrQuotaExceeded", err)
			}
			var e *client.Error
			if !errors.As(err, &e) || e.RetryAfter <= 0 {
				t.Errorf("quota rejection %v carries no live Retry-After", err)
			}
			rejections.Add(1)
			select {
			case retried <- struct{}{}:
			default:
			}
		}))
	data := datasetBytes(t, prob)

	blocker, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "serial", Iterations: 1000000}, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// The API key rode the submission onto the wire as the tenant.
	if blocker.Tenant != "alpha" || blocker.Priority != "bulk" {
		t.Fatalf("submitted job tenant=%q priority=%q, want alpha/bulk", blocker.Tenant, blocker.Priority)
	}

	// Tenant alpha is at max_active=1: the next submission 429s with
	// quota_exceeded until the blocker is cancelled.
	go func() {
		<-retried
		c.Cancel(ctx, blocker.ID)
	}()
	j, err := c.Submit(ctx, client.SubmitRequest{
		Algorithm: "serial", Iterations: 2, Priority: "interactive",
	}, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("submit through quota backpressure: %v", err)
	}
	if rejections.Load() == 0 {
		t.Error("submission went through without observing quota backpressure")
	}
	if j.Priority != "interactive" {
		t.Errorf("requested priority lost on the wire: %q", j.Priority)
	}

	// The fairness rollup is on /v1/status for operators and probes.
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SchedPolicy != "wfq" {
		t.Errorf("status sched_policy = %q, want wfq", st.SchedPolicy)
	}
	var alpha *client.TenantStatus
	for i := range st.Tenants {
		if st.Tenants[i].Name == "alpha" {
			alpha = &st.Tenants[i]
		}
	}
	if alpha == nil {
		t.Fatalf("status tenants %+v lack alpha", st.Tenants)
	}
	if alpha.Weight != 2 || alpha.MaxActive != 1 || alpha.QuotaRejections < 1 {
		t.Errorf("alpha rollup %+v, want weight 2, max_active 1, >=1 quota rejection", alpha)
	}
	_ = svc
	c.Cancel(ctx, j.ID)
}
