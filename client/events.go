package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// EventStream decodes a job's Server-Sent-Events live feed
// (GET /v1/jobs/{id}/events) into typed Events. Close it when done;
// cancelling the context passed to Events also ends the stream.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Events opens the job's live feed. The server sends an "info" event
// with the full summary first (Event.Info), then one event per
// iteration, ingest acceptance, fold, snapshot and state transition;
// the feed closes after the terminal state event.
func (c *Client) Events(ctx context.Context, id string) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		return nil, &Error{Status: resp.StatusCode, Code: CodeInternal,
			Detail: fmt.Sprintf("events endpoint answered %q, not an SSE feed", ct)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next blocks for the next event. It returns io.EOF when the feed ends
// with the job (after the final "state" event).
func (s *EventStream) Next() (Event, error) {
	var event, data string
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if event == "" && data == "" {
				continue // heartbeat / separator run
			}
			return decodeEvent(event, data)
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case strings.HasPrefix(line, ":"):
			// comment/heartbeat — ignore
		}
	}
	if err := s.sc.Err(); err != nil {
		return Event{}, fmt.Errorf("client: reading event stream: %w", err)
	}
	if event != "" || data != "" {
		// Feed ended mid-message without the closing blank line.
		return decodeEvent(event, data)
	}
	return Event{}, io.EOF
}

func decodeEvent(event, data string) (Event, error) {
	e := Event{Type: event}
	if event == "info" {
		// The info event's payload is the job summary itself.
		e.Info = &Job{}
		if err := json.Unmarshal([]byte(data), e.Info); err != nil {
			return Event{}, fmt.Errorf("client: decoding info event %q: %w", data, err)
		}
		e.Job = e.Info.ID
		return e, nil
	}
	if err := json.Unmarshal([]byte(data), &e); err != nil {
		return Event{}, fmt.Errorf("client: decoding %q event %q: %w", event, data, err)
	}
	if e.Type == "" {
		e.Type = event
	}
	return e, nil
}

// Close ends the feed.
func (s *EventStream) Close() error { return s.body.Close() }
