// Package client is the typed Go SDK for the ptychoserve /v1 HTTP API:
// the supported way for Go programs to submit reconstructions, feed
// live acquisitions, follow progress and collect results without
// hand-rolling HTTP.
//
//	c, _ := client.New("http://127.0.0.1:8617")
//	job, err := c.Submit(ctx, client.SubmitRequest{Algorithm: "gd", Iterations: 100}, dataset)
//	...
//	done, err := c.Wait(ctx, job.ID)
//
// Every method takes a context and returns typed errors: non-2xx
// responses decode into *Error carrying the machine-readable problem
// code (match with errors.Is against ErrNotFound, ErrQueueFull, …).
// Backpressure is handled for you — 429 responses are retried
// honoring the server's Retry-After hint with a capped backoff, and
// submissions carry an Idempotency-Key so those retries can never
// double-enqueue a job.
//
// The wire contract (SubmitRequest, Job, Problem, Event) is defined in
// this package and imported by the server, so client and service
// cannot drift apart.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one ptychoserve. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	notify  func(err error, delay time.Duration)
	apiKey  string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (transport
// tuning, proxies, test doubles). The default has no global timeout —
// per-call contexts bound every request, and SSE feeds are long-lived.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets the retry budget for backpressure (429) responses:
// at most max retries per call, each delay capped at cap. max 0
// disables automatic retries. Default: 8 retries capped at 30s.
func WithRetry(max int, cap time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = max, cap }
}

// WithRetryNotify installs a hook called before each backpressure
// retry with the rejection and the delay about to be slept — for
// progress logs ("ingest full, backing off 1s").
func WithRetryNotify(fn func(err error, delay time.Duration)) Option {
	return func(c *Client) { c.notify = fn }
}

// WithAPIKey sends key as the X-API-Key header on every request. The
// key names the caller's tenant: submissions are accounted (and, under
// a weighted-fair server, scheduled) against that tenant's share and
// quotas. Without a key the server books everything under the
// "anonymous" tenant.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// New returns a client for the server at baseURL (scheme://host[:port],
// with no trailing /v1 — the client versions its own paths).
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q: want http:// or https://", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{},
		retries: 8,
		backoff: 30 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// newIdempotencyKey mints a random key for one submission attempt
// chain: the retries within a single Submit call share it, distinct
// calls never do.
func newIdempotencyKey() string {
	var b [16]byte
	rand.Read(b[:]) // never fails (crypto/rand panics on a broken source)
	return "sdk-" + hex.EncodeToString(b[:])
}

// do runs one /v1 request with automatic backpressure retries.
// body (optional) rebuilds the request body per attempt; want is the
// accepted status; out (optional) receives the decoded JSON response.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, header http.Header, body func() (io.Reader, string), want int, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		var ct string
		if body != nil {
			rd, ct = body()
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		if c.apiKey != "" {
			req.Header.Set("X-API-Key", c.apiKey)
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if resp.StatusCode == want {
			defer resp.Body.Close()
			if out == nil {
				io.Copy(io.Discard, resp.Body)
				return nil
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
			}
			return nil
		}
		apiErr := decodeError(resp)
		if !Retryable(apiErr) || attempt >= c.retries {
			return apiErr
		}
		delay := retryDelay(apiErr, attempt, c.backoff)
		if c.notify != nil {
			c.notify(apiErr, delay)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return fmt.Errorf("client: giving up on %s %s: %w (last rejection: %v)", method, path, ctx.Err(), apiErr)
		}
	}
}

// retryDelay picks the next backoff: the server's Retry-After when it
// sent one, else 250ms doubling per attempt — both capped.
func retryDelay(err error, attempt int, cap time.Duration) time.Duration {
	var e *Error
	d := 250 * time.Millisecond << min(attempt, 20)
	if errors.As(err, &e) && e.RetryAfter > 0 {
		d = e.RetryAfter
	}
	return min(d, cap)
}

// decodeError turns a non-2xx response into *Error, consuming the
// body. Responses without a parseable problem envelope (a proxy's
// error page, say) still produce a coded error from the status.
func decodeError(resp *http.Response) *Error {
	defer resp.Body.Close()
	e := &Error{Status: resp.StatusCode, Code: CodeInternal}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		e.RetryAfter = time.Duration(ra) * time.Second
	}
	var p Problem
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(raw, &p) == nil && p.Code != "" {
		e.Code = p.Code
		e.Detail = p.Detail
		if e.Detail == "" {
			e.Detail = p.LegacyError
		}
		if e.RetryAfter == 0 && p.RetryAfterMS > 0 {
			e.RetryAfter = time.Duration(p.RetryAfterMS) * time.Millisecond
		}
		return e
	}
	e.Detail = strings.TrimSpace(string(raw))
	return e
}

// multipartBody builds the multipart submit body — a "params" JSON
// part and a "dataset" binary part — as framing prefix + the caller's
// dataset slice + closing suffix. The dataset bytes are never copied:
// each retry attempt re-wraps the same slice in fresh readers, so a
// near-gigabyte submission costs one buffer, not one per attempt.
func multipartBody(req SubmitRequest, dataset []byte) func() (io.Reader, string) {
	var pre, suf bytes.Buffer
	sw := &switchWriter{w: &pre}
	mw := multipart.NewWriter(sw)
	pw, err := mw.CreateFormField("params")
	if err == nil {
		err = json.NewEncoder(pw).Encode(req)
	}
	if err == nil {
		// Emit the dataset part's headers into the prefix; its content
		// is spliced in between prefix and suffix at request time.
		_, err = mw.CreateFormFile("dataset", "dataset")
	}
	if err == nil {
		sw.w = &suf
		err = mw.Close()
	}
	if err != nil {
		// Buffer writes cannot fail; unreachable, but surface it as a
		// request the server will reject loudly.
		pre.Reset()
		suf.Reset()
	}
	return func() (io.Reader, string) {
		return io.MultiReader(
			bytes.NewReader(pre.Bytes()),
			bytes.NewReader(dataset),
			bytes.NewReader(suf.Bytes()),
		), mw.FormDataContentType()
	}
}

// switchWriter lets one multipart.Writer emit into the prefix buffer
// first and the suffix buffer after the dataset part's headers.
type switchWriter struct{ w io.Writer }

func (s *switchWriter) Write(p []byte) (int, error) { return s.w.Write(p) }

// submit shares the batch/streaming submission path.
func (c *Client) submit(ctx context.Context, path string, req SubmitRequest, dataset io.Reader) (*Job, error) {
	data, err := io.ReadAll(dataset)
	if err != nil {
		return nil, fmt.Errorf("client: reading dataset: %w", err)
	}
	key := req.IdempotencyKey
	if key == "" {
		key = newIdempotencyKey()
	}
	h := http.Header{"Idempotency-Key": []string{key}}
	if req.RequestID != "" {
		h.Set("X-Request-ID", req.RequestID)
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, path, nil, h, multipartBody(req, data), http.StatusAccepted, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Submit enqueues a batch reconstruction of the PTYCHOv1 dataset read
// from dataset. Queue-full rejections are retried under the client's
// retry budget; the Idempotency-Key guarantees the retries enqueue at
// most one job.
func (c *Client) Submit(ctx context.Context, req SubmitRequest, dataset io.Reader) (*Job, error) {
	return c.submit(ctx, "/v1/jobs", req, dataset)
}

// SubmitStreaming opens a streaming job from a PTYCHS opening
// (geometry + probe, no frames) read from opening. Feed frames with
// AppendFrames, then CloseStream; req.Iterations is the tail run after
// EOF.
func (c *Client) SubmitStreaming(ctx context.Context, req SubmitRequest, opening io.Reader) (*Job, error) {
	return c.submit(ctx, "/v1/jobs/stream", req, opening)
}

// AppendFrames pushes one PTYCHS chunk ('F' frames, or 'E' to close
// the stream) to a streaming job. Ingest-full rejections are retried
// with the server's Retry-After hint (chunk acceptance is
// all-or-nothing, so the retry is safe); a chunk that can never fit
// returns ErrChunkTooLarge immediately — split it.
func (c *Client) AppendFrames(ctx context.Context, id string, chunk []byte) (FrameAck, error) {
	var ack FrameAck
	body := func() (io.Reader, string) { return bytes.NewReader(chunk), "application/octet-stream" }
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/frames", nil, nil, body, http.StatusOK, &ack)
	return ack, err
}

// CloseStream marks the end of a streaming job's acquisition: buffered
// frames still fold, then the job runs its tail iterations. Idempotent.
func (c *Client) CloseStream(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/eof", nil, nil, nil, http.StatusOK, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Get returns the job's current summary with the default cost-history
// tail.
func (c *Client) Get(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, nil, http.StatusOK, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Trace returns the job's span timeline: queue wait, setup,
// per-iteration compute and communication phases per rank, checkpoint
// writes. The timeline of a running job is a point-in-time snapshot;
// open spans have a zero End.
func (c *Client) Trace(ctx context.Context, id string) (*JobTrace, error) {
	var tr JobTrace
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil, nil, nil, http.StatusOK, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// History returns the job's per-iteration cost curve: the last tail
// entries, or the complete history when tail < 0.
func (c *Client) History(ctx context.Context, id string, tail int) ([]float64, error) {
	q := url.Values{"history": []string{"all"}}
	if tail >= 0 {
		q.Set("history", strconv.Itoa(tail))
	}
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), q, nil, nil, http.StatusOK, &job); err != nil {
		return nil, err
	}
	return job.CostHistory, nil
}

// List returns one page of jobs in deterministic submit-time order.
func (c *Client) List(ctx context.Context, opts ListOptions) (*JobPage, error) {
	q := url.Values{}
	if opts.Status != "" {
		q.Set("status", opts.Status)
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	var page JobPage
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", q, nil, nil, http.StatusOK, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// Jobs iterates every job matching opts across pages — the
// auto-paginating form of List:
//
//	for job, err := range c.Jobs(ctx, client.ListOptions{Status: client.StateRunning}) {
//		if err != nil { ... }
//		...
//	}
//
// A non-nil error ends the iteration.
func (c *Client) Jobs(ctx context.Context, opts ListOptions) iter.Seq2[Job, error] {
	return func(yield func(Job, error) bool) {
		for {
			page, err := c.List(ctx, opts)
			if err != nil {
				yield(Job{}, err)
				return
			}
			for _, j := range page.Jobs {
				if !yield(j, nil) {
					return
				}
			}
			if page.NextCursor == "" {
				return
			}
			opts.Cursor = page.NextCursor
		}
	}
}

// Cancel cancels the job: queued jobs immediately, running ones at the
// next iteration boundary after a final checkpoint.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, nil, nil, http.StatusOK, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Resume submits a new job warm-started from the job's last OBJCKv1
// checkpoint, returning the new job.
func (c *Client) Resume(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/resume", nil, nil, nil, http.StatusAccepted, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Object streams the job's latest snapshot as OBJCKv1, returning the
// body and the completed-iteration count it corresponds to. The caller
// closes the reader. ErrNoSnapshot before the first checkpoint.
func (c *Client) Object(ctx context.Context, id string) (io.ReadCloser, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id)+"/object", nil)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %w", err)
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, decodeError(resp)
	}
	iters, _ := strconv.Atoi(resp.Header.Get("X-Ptycho-Iterations"))
	return resp.Body, iters, nil
}

// PreviewOptions selects a preview rendering.
type PreviewOptions struct {
	// Kind is "phase" (default) or "mag".
	Kind string
	// Slice is the object slice to render (multislice jobs).
	Slice int
}

// PreviewPNG returns the job's latest snapshot rendered as a grayscale
// PNG. ErrNoSnapshot before the first checkpoint.
func (c *Client) PreviewPNG(ctx context.Context, id string, opts PreviewOptions) ([]byte, error) {
	q := url.Values{}
	if opts.Kind != "" {
		q.Set("kind", opts.Kind)
	}
	if opts.Slice != 0 {
		q.Set("slice", strconv.Itoa(opts.Slice))
	}
	u := c.base + "/v1/jobs/" + url.PathEscape(id) + "/preview.png"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Grid returns the worker-grid coordinator's state.
func (c *Client) Grid(ctx context.Context) (*GridStatus, error) {
	var gs GridStatus
	if err := c.do(ctx, http.MethodGet, "/v1/grid", nil, nil, nil, http.StatusOK, &gs); err != nil {
		return nil, err
	}
	return &gs, nil
}

// Status returns the server's fleet-health rollup: queue and pool
// state, per-state job counts, grid worker liveness, WAL counters and
// prediction accuracy.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodGet, "/v1/status", nil, nil, nil, http.StatusOK, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Debug returns the job's debug bundle: summary with complete cost
// history, submitted parameters, span timeline and the flight
// recorder's recent events.
func (c *Client) Debug(ctx context.Context, id string) (*DebugBundle, error) {
	var db DebugBundle
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/debug", nil, nil, nil, http.StatusOK, &db); err != nil {
		return nil, err
	}
	return &db, nil
}

// Healthz checks liveness (GET /healthz — unversioned infrastructure).
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, nil, http.StatusOK, nil)
}

// Wait polls the job until it reaches a terminal state (or ctx ends),
// returning the final summary. The returned job may be Failed or
// Cancelled — inspect Job.State; err reports transport/context
// failures only.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for {
		job, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Terminal() {
			return job, nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
